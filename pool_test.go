package hypo

import (
	"fmt"
	"sync"
	"testing"

	"hypodatalog/internal/workload"
)

func TestPoolBasics(t *testing.T) {
	p := mustParse(t, uniSrc)
	pool, err := NewPool(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Ask("grad(tony)")
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("grad(tony) false via pool")
	}
	bs, err := pool.Query("grad(S)[add: take(S, C)]")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) == 0 {
		t.Error("no bindings via pool")
	}
	if _, err := pool.Ask("grad(S)"); err == nil {
		t.Error("non-ground Ask accepted")
	}
}

func TestPoolRejectsBadConfig(t *testing.T) {
	p := mustParse(t, "a :- b, a[add: c1], a[add: c2].\n")
	if _, err := NewPool(p, Options{Mode: ModeCascade}); err == nil {
		t.Error("cascade pool over non-linear program should fail")
	}
}

// TestPoolConcurrent hammers a pool from many goroutines, with queries
// that intern fresh constants, so `go test -race` exercises the shared
// symbol table. Answers must match the single-threaded engine.
func TestPoolConcurrent(t *testing.T) {
	src := workload.ParityProgram(6) + workload.ChainProgram(4)
	p := mustParse(t, src)
	pool, err := NewPool(p, Options{
		Mode:        ModeUniform,
		ExtraDomain: []string{"freshconstant", "anotherfresh"},
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := []struct {
		q    string
		want bool
	}{
		{"even", true},
		{"a1", true},
		{"a2", false},
		{"even[add: item(freshconstant)]", false}, // |A| becomes 7: odd
		{"odd[add: item(anotherfresh)]", true},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				qc := queries[(g+i)%len(queries)]
				got, err := pool.Ask(qc.q)
				if err != nil {
					errs <- err
					return
				}
				if got != qc.want {
					errs <- fmt.Errorf("goroutine %d: %s = %v, want %v", g, qc.q, got, qc.want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
