package hypo

import (
	"context"
	"testing"
)

// TestDemandMetamorphicUnderMutation re-runs the metamorphic storm
// (cache_test.go) on a demand-driven pool: readers race live commits,
// every answer echoes its data version, and each recorded answer is
// replayed on a cold full-evaluation engine at that version's exact
// fact set. The replay engine never uses the magic rewrite, so any
// divergence between demand and full evaluation — including one caused
// by a stale demand memo surviving an incremental catch-up — fails
// here.
func TestDemandMetamorphicUnderMutation(t *testing.T) {
	metamorphicStorm(t, Options{PoolSize: 4, CacheBytes: 1 << 20, DemandDriven: true})
}

// TestDemandCacheCarriesAcrossUnrelatedCommit: the cone-based
// carry-forward of the versioned answer cache must behave identically
// under demand-driven evaluation — a commit outside a cached answer's
// cone carries it to the new version, a commit inside the cone drops
// it. The demand engine's own memo invalidation (Demand.Invalidate)
// runs on the same commits underneath; a stale demand memo would
// surface as a wrong re-evaluated answer on the in-cone miss.
func TestDemandCacheCarriesAcrossUnrelatedCommit(t *testing.T) {
	l := openLive(t, Options{CacheBytes: 1 << 20, Mode: ModeUniform, DemandDriven: true})
	pl := l.Pool()
	ctx := context.Background()

	// Warm both cones at v0.
	for _, q := range []string{"light(off)", "reach(a, b)"} {
		ok, info, err := pl.AskInfoCtx(ctx, q)
		if err != nil || !ok {
			t.Fatalf("warm %q: ok=%v err=%v", q, ok, err)
		}
		if info.Cache != CacheMiss {
			t.Fatalf("warm %q served %v, want miss", q, info.Cache)
		}
	}

	// Commit inside the edge/reach cone only: the demand memos for reach
	// are dropped, light's carry outside the cone.
	if _, err := l.Apply(mutations(t, []string{"edge(b, c)"}, nil)); err != nil {
		t.Fatal(err)
	}
	ok, info, err := pl.AskInfoCtx(ctx, "light(off)")
	if err != nil || !ok {
		t.Fatalf("light(off) after commit: ok=%v err=%v", ok, err)
	}
	if info.Cache != CacheHit {
		t.Fatalf("light(off) after unrelated commit served %v, want carried hit", info.Cache)
	}

	// In-cone read re-evaluates through the freshly invalidated demand
	// path and must see the new edge.
	ok, info, err = pl.AskInfoCtx(ctx, "reach(a, c)")
	if err != nil || !ok {
		t.Fatalf("reach(a, c) after commit: ok=%v err=%v", ok, err)
	}
	if info.Cache != CacheMiss {
		t.Fatalf("reach(a, c) after in-cone commit served %v, want miss", info.Cache)
	}

	// A second commit overlapping the same cone: retract the new edge
	// again. A demand memo carried over from the previous version would
	// keep answering true.
	if _, err := l.Apply(mutations(t, nil, []string{"edge(b, c)"})); err != nil {
		t.Fatal(err)
	}
	ok, _, err = pl.AskInfoCtx(ctx, "reach(a, c)")
	if err != nil {
		t.Fatalf("reach(a, c) after retract: %v", err)
	}
	if ok {
		t.Fatal("reach(a, c) still true after retracting edge(b, c): stale demand memo survived the commit")
	}
}

// TestDemandIncrementalConeOverlap drives Engine.ApplyDelta directly
// across commits whose cones overlap the installed magic programs:
// after each batch the demand-driven engine must agree with a plain
// engine rebuilt cold at the same fact set, on hits, misses and
// hypothetical contexts.
func TestDemandIncrementalConeOverlap(t *testing.T) {
	const rules = `
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
		blocked(X, Y) :- node(X), node(Y), not reach(X, Y).
	`
	base := rules + "node(a). node(b). node(c). node(d).\nedge(a, b).\n"
	prog, err := Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := New(prog, Options{Mode: ModeUniform, DemandDriven: true})
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{"reach(a, d)", "reach(a, c)", "reach(d, a)", "blocked(a, d)", "blocked(b, a)"}
	check := func(step string, facts []string) {
		t.Helper()
		src := rules
		for _, f := range facts {
			src += f + ".\n"
		}
		cp, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		cold, err := New(cp, Options{Mode: ModeUniform, ExtraDomain: []string{"a", "b", "c", "d"}})
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		for _, q := range queries {
			want, err := cold.Ask(q)
			if err != nil {
				t.Fatalf("%s: cold Ask(%s): %v", step, q, err)
			}
			got, err := dd.Ask(q)
			if err != nil {
				t.Fatalf("%s: demand Ask(%s): %v", step, q, err)
			}
			if got != want {
				t.Errorf("%s: Ask(%s): demand=%v cold=%v", step, q, got, want)
			}
		}
		wantU, err := cold.AskUnder("reach(a, d)", "edge(c, d)")
		if err != nil {
			t.Fatalf("%s: cold AskUnder: %v", step, err)
		}
		gotU, err := dd.AskUnder("reach(a, d)", "edge(c, d)")
		if err != nil {
			t.Fatalf("%s: demand AskUnder: %v", step, err)
		}
		if gotU != wantU {
			t.Errorf("%s: AskUnder(reach(a, d), add edge(c, d)): demand=%v cold=%v", step, gotU, wantU)
		}
	}

	facts := []string{"node(a)", "node(b)", "node(c)", "node(d)", "edge(a, b)"}
	check("initial", facts)

	// Each batch touches the edge/reach cone the installed magic
	// programs mention, so Demand.Invalidate takes the drop-everything
	// path; the node-only batch overlaps just the blocked cone.
	steps := []struct {
		name     string
		asserts  []string
		retracts []string
	}{
		{"extend chain", []string{"edge(b, c)", "edge(c, d)"}, nil},
		{"cut middle", nil, []string{"edge(b, c)"}},
		{"reroute", []string{"edge(b, d)", "edge(d, c)"}, nil},
		{"shrink domain pred", nil, []string{"node(d)"}},
	}
	for _, st := range steps {
		if err := dd.ApplyDelta(st.asserts, st.retracts); err != nil {
			t.Fatalf("%s: ApplyDelta: %v", st.name, err)
		}
		next := facts[:0:0]
		drop := map[string]bool{}
		for _, r := range st.retracts {
			drop[r] = true
		}
		for _, f := range facts {
			if !drop[f] {
				next = append(next, f)
			}
		}
		facts = append(next, st.asserts...)
		check(st.name, facts)
	}
}
