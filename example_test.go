package hypo_test

import (
	"fmt"
	"log"
	"sort"

	"hypodatalog"
)

// The package-level example: parse, inspect stratification, query.
func Example() {
	prog, err := hypo.Parse(`
		take(tony, his101).
		take(tony, eng201).
		take(mary, his101).
		grad(S) :- take(S, his101), take(S, eng201).
	`)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := hypo.New(prog, hypo.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ok, err := eng.Ask("grad(mary)[add: take(mary, eng201)]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("would mary graduate with eng201?", ok)
	// Output:
	// would mary graduate with eng201? true
}

func ExampleEngine_Query() {
	prog, err := hypo.Parse(`
		take(tony, his101).
		take(tony, eng201).
		take(mary, his101).
		grad(S) :- take(S, his101), take(S, eng201).
	`)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := hypo.New(prog, hypo.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Example 2 of the paper: who could graduate with one more course?
	bindings, err := eng.Query("grad(S)[add: take(S, C)]")
	if err != nil {
		log.Fatal(err)
	}
	students := map[string]bool{}
	for _, b := range bindings {
		students[b["S"]] = true
	}
	var names []string
	for s := range students {
		names = append(names, s)
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output:
	// [mary tony]
}

func ExampleProgram_Stratification() {
	prog, err := hypo.Parse(`
		a2 :- b2, a2[add: c2].
		a2 :- d2, not a1.
		a1 :- b1, a1[add: c1].
		a1 :- d1.
	`)
	if err != nil {
		log.Fatal(err)
	}
	s := prog.Stratification()
	fmt.Printf("linear=%v strata=%d (data-complexity in Σ_%d^P)\n", s.Linear, s.Strata, s.Strata)
	// Output:
	// linear=true strata=2 (data-complexity in Σ_2^P)
}

func ExampleEngine_Explain() {
	prog, err := hypo.Parse(`
		p(a).
		q(X) :- r(X)[add: s(X)].
		r(X) :- p(X), s(X).
	`)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := hypo.New(prog, hypo.Options{Mode: hypo.ModeUniform})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := eng.Explain("q(a)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree)
	// Output:
	// q(a)  [rule q(a) :- r(a)[add: s(a)]]
	//   r(a)  [under add: s(a)]
	//     r(a)  [rule r(a) :- p(a), s(a)]
	//       p(a)  [fact]
	//       s(a)  [fact]
}

func ExampleNewPool() {
	prog, err := hypo.Parse("p(a).\nq(X) :- p(X).")
	if err != nil {
		log.Fatal(err)
	}
	pool, err := hypo.NewPool(prog, hypo.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Pools are safe to share across goroutines; each query gets its own
	// engine from the free list.
	done := make(chan bool, 4)
	for i := 0; i < 4; i++ {
		go func() {
			ok, err := pool.Ask("q(a)")
			done <- err == nil && ok
		}()
	}
	all := true
	for i := 0; i < 4; i++ {
		all = all && <-done
	}
	fmt.Println(all)
	// Output:
	// true
}

func ExampleEngine_AskUnder() {
	prog, err := hypo.Parse("grad(S) :- take(S, his101), take(S, eng201).\ntake(mary, his101).")
	if err != nil {
		log.Fatal(err)
	}
	eng, err := hypo.New(prog, hypo.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ok, err := eng.AskUnder("grad(mary)", "take(mary, eng201)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ok)
	// Output:
	// true
}
