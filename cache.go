package hypo

import (
	"errors"
	"sort"
	"strings"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/cache"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

// CacheStatus reports how a read was served when the versioned answer
// cache (Options.CacheBytes) is enabled.
type CacheStatus int

const (
	// CacheBypass: no cache is configured for this engine or pool.
	CacheBypass CacheStatus = iota
	// CacheMiss: this call ran the evaluation (and stored the answer).
	CacheMiss
	// CacheHit: the answer was served from a stored entry; no engine was
	// leased and no evaluation ran.
	CacheHit
	// CacheCoalesced: an identical query was already evaluating; this
	// call waited for it and shares its answer — N concurrent identical
	// misses cost one engine lease.
	CacheCoalesced
)

func (s CacheStatus) String() string {
	switch s {
	case CacheMiss:
		return "miss"
	case CacheHit:
		return "hit"
	case CacheCoalesced:
		return "coalesced"
	default:
		return "bypass"
	}
}

// ReadInfo describes how one pool read was served: the data version the
// answer is valid at, how the cache was involved, and the evaluation
// work this particular call performed (zero when the answer came from
// the cache or from another caller's coalesced evaluation).
type ReadInfo struct {
	DataVersion uint64
	Cache       CacheStatus
	Stats       Stats
}

// cachedAnswer is the value stored in the answer cache: a ground result
// or a materialised binding set, stamped with the data version it was
// computed at. An entry's version always equals its key's version —
// answers computed at a version other than the one the key was built
// from are returned to callers but never stored (see Computed.Store).
type cachedAnswer struct {
	ok       bool
	bindings []Binding
	version  uint64

	// preds are the predicates the answer depends on from the outside: the
	// query's root predicate plus any hypothetically added/deleted ones.
	// On a commit the pool carries the entry forward to the new version
	// when none of them fall inside the commit's affected cone — the
	// answer is then version-stable by construction. nil means "unknown;
	// never carry".
	preds []symbols.Pred
}

// premisePreds collects the predicates a compiled premise reads at the
// root: the queried atom's predicate plus every hypothetical add/del,
// and any extra atoms (AskUnder's outer adds). Reverse-closed cones make
// this sufficient for carry-forward: if none of these predicates are in
// a commit's cone, no changed predicate is reachable from the query.
func premisePreds(cpr ast.CPremise, extra []ast.CAtom) []symbols.Pred {
	seen := make(map[symbols.Pred]bool, 1+len(cpr.Adds)+len(cpr.Dels)+len(extra))
	out := make([]symbols.Pred, 0, 1+len(cpr.Adds)+len(cpr.Dels)+len(extra))
	add := func(p symbols.Pred) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	add(cpr.Atom.Pred)
	for _, a := range cpr.Adds {
		add(a.Pred)
	}
	for _, a := range cpr.Dels {
		add(a.Pred)
	}
	for _, a := range extra {
		add(a.Pred)
	}
	return out
}

// Cache key canonicalisation. The key folds the operation kind, the
// parsed premise rendered back to surface syntax (so formatting
// differences collapse), and — for AskUnder — the sorted added atoms.
// Ask and AskUnder use distinct prefixes even when semantically
// equivalent; the cache trades a little duplication for keys that are
// trivially correct.

// demandKeyPrefix namespaces answer-cache keys produced under
// demand-driven evaluation. Demand answers equal full answers by
// construction, but the modes memoise through different machinery, so
// keeping their cache entries disjoint means a defect in one mode can
// never serve a wrong answer through the other's key.
const demandKeyPrefix = "d\x1f"

// ckey namespaces an answer-cache key by the engine's evaluation mode.
func (e *Engine) ckey(k string) string {
	if e.dem != nil {
		return demandKeyPrefix + k
	}
	return k
}

// ckey namespaces an answer-cache key by the pool's evaluation mode.
func (pl *Pool) ckey(k string) string {
	if pl.opts.DemandDriven {
		return demandKeyPrefix + k
	}
	return k
}

func askCacheKey(pr ast.Premise) string { return "a\x1f" + pr.String() }

func queryCacheKey(pr ast.Premise) string { return "q\x1f" + pr.String() }

func askUnderCacheKey(pr ast.Premise, adds []ast.Atom) string {
	ss := make([]string, len(adds))
	for i, a := range adds {
		ss[i] = a.String()
	}
	sort.Strings(ss)
	return "u\x1f" + pr.String() + "\x1f" + strings.Join(ss, "\x1f")
}

// boolAnswerBytes is the charged size of a cached ground answer.
const boolAnswerBytes = 16

// bindingsBytes estimates the heap footprint of a materialised binding
// set for the cache's byte budget.
func bindingsBytes(bs []Binding) int64 {
	n := int64(24)
	for _, b := range bs {
		n += 48
		for k, v := range b {
			n += int64(len(k)+len(v)) + 32
		}
	}
	return n
}

// wrapCacheWait converts a cache.WaitError — the caller's context ended
// while it was waiting on another caller's in-flight evaluation — into
// the same *AbortError(ErrCanceled/ErrDeadline) shape every other
// ctx-bounded wait in the package reports. Other errors pass through.
func wrapCacheWait(err error) error {
	var we *cache.WaitError
	if errors.As(err, &we) {
		return topdown.ContextAbort(we.Err, topdown.Stats{})
	}
	return err
}
