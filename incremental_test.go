package hypo

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"hypodatalog/internal/metrics"
)

// incSrc exercises every maintenance regime at once: linear-recursive
// reach (semi-naive addition + DRed retraction, with cycles once edges
// loop), negation over a cone predicate (memo pruning / cache drop), and
// a hypothetical premise (always ineligible for in-place Δ maintenance).
const incSrc = `
node(a). node(b). node(c). node(d).
edge(a, b). edge(b, c).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
unreached(X) :- node(X), ~reach(a, X).
could(X) :- reach(a, X)[add: edge(c, d)].
`

// probeAll renders a canonical answer sheet for the fixed probe set.
func probeAll(t *testing.T, e *Engine) string {
	t.Helper()
	var sb strings.Builder
	for _, q := range []string{"reach(X, Y)", "unreached(X)", "could(X)"} {
		bs, err := e.Query(q)
		if err != nil {
			t.Fatalf("Query(%s): %v", q, err)
		}
		rows := make([]string, 0, len(bs))
		for _, b := range bs {
			keys := make([]string, 0, len(b))
			for k := range b {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var row []string
			for _, k := range keys {
				row = append(row, k+"="+b[k])
			}
			rows = append(rows, strings.Join(row, ","))
		}
		sort.Strings(rows)
		fmt.Fprintf(&sb, "%s: %s\n", q, strings.Join(rows, " "))
	}
	for _, q := range []string{"reach(a, d)", "reach(d, a)", "reach(b, c)", "unreached(d)"} {
		ok, err := e.Ask(q)
		if err != nil {
			t.Fatalf("Ask(%s): %v", q, err)
		}
		fmt.Fprintf(&sb, "%s: %v\n", q, ok)
	}
	for _, adds := range [][]string{{"edge(c, d)"}, {"edge(d, a)", "edge(c, d)"}} {
		ok, err := e.AskUnder("reach(a, d)", adds...)
		if err != nil {
			t.Fatalf("AskUnder(%v): %v", adds, err)
		}
		fmt.Fprintf(&sb, "reach(a, d)+%v: %v\n", adds, ok)
	}
	return sb.String()
}

// TestEngineApplyDeltaMatchesRebuild drives both engine modes through a
// mutation sequence covering additions, DRed retractions (including with
// a cycle in play), mixed batches and no-op batches, comparing every
// incremental engine against a cold engine built from the final facts at
// each step. The cold engines pin the original domain, matching the
// incremental engines' fixed dom(R, DB).
func TestEngineApplyDeltaMatchesRebuild(t *testing.T) {
	p := mustParse(t, incSrc)
	dom, _ := domainInfo(p, Options{})

	incUni, err := New(p, Options{Mode: ModeUniform})
	if err != nil {
		t.Fatal(err)
	}
	incCas, err := New(p, Options{Mode: ModeCascade})
	if err != nil {
		t.Fatalf("cascade mode (is incSrc linearly stratifiable?): %v", err)
	}

	// Surface facts tracked alongside, to build the cold reference.
	facts := map[string]bool{}
	for _, f := range p.src.Facts {
		facts[f.String()] = true
	}

	steps := []struct {
		asserts, retracts []string
	}{
		{[]string{"edge(c, d)"}, nil},                    // growth
		{nil, []string{"edge(a, b)"}},                    // DRed collapse from the root
		{[]string{"edge(a, b)", "edge(d, a)"}, nil},      // re-add + close a cycle
		{nil, []string{"edge(b, c)"}},                    // retraction with the cycle live
		{[]string{"edge(b, c)"}, []string{"edge(c, d)"}}, // mixed batch
		{[]string{"edge(a, b)"}, []string{"edge(d, c)"}}, // pure no-ops
		{nil, []string{"edge(d, a)"}},                    // break the cycle
	}
	for si, st := range steps {
		for _, e := range []*Engine{incUni, incCas} {
			if err := e.ApplyDelta(st.asserts, st.retracts); err != nil {
				t.Fatalf("step %d ApplyDelta: %v", si, err)
			}
		}
		for _, s := range st.asserts {
			facts[s] = true
		}
		for _, s := range st.retracts {
			delete(facts, s)
		}
		var fs []string
		for f := range facts {
			fs = append(fs, f)
		}
		sort.Strings(fs)
		ms, err := ParseMutations(fs, nil)
		if err != nil {
			t.Fatal(err)
		}
		var atoms = p.src.Facts[:0:0]
		for _, m := range ms {
			atoms = append(atoms, m.Atom)
		}
		coldProg, err := p.withFacts(atoms, dom)
		if err != nil {
			t.Fatalf("step %d withFacts: %v", si, err)
		}
		cold, err := New(coldProg, Options{Mode: ModeUniform})
		if err != nil {
			t.Fatal(err)
		}
		want := probeAll(t, cold)
		if got := probeAll(t, incUni); got != want {
			t.Errorf("step %d uniform drifted from cold rebuild:\ngot:\n%s\nwant:\n%s", si, got, want)
		}
		if got := probeAll(t, incCas); got != want {
			t.Errorf("step %d cascade drifted from cold rebuild:\ngot:\n%s\nwant:\n%s", si, got, want)
		}
	}
}

func TestEngineApplyDeltaValidation(t *testing.T) {
	p := mustParse(t, incSrc)
	e, err := New(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyDelta([]string{"reach(a, b)"}, nil); err == nil {
		t.Error("asserting an intensional predicate was accepted")
	}
	if err := e.ApplyDelta([]string{"edge(a, zz)"}, nil); err == nil {
		t.Error("out-of-domain constant was accepted")
	}
	if err := e.ApplyDelta([]string{"edge(a, X)"}, nil); err == nil {
		t.Error("non-ground fact was accepted")
	}
	// A rejected batch must leave the base untouched.
	if ok, _ := e.Ask("edge(a, b)"); !ok {
		t.Error("base mutated by rejected batch")
	}
}

// TestLiveIncrementalCatchUp commits through the full Live path and
// checks that stale pooled engines catch up by applying the recorded
// deltas in place — no rebuild — including across several commits banked
// while an engine sat idle.
func TestLiveIncrementalCatchUp(t *testing.T) {
	l := openLive(t, Options{PoolSize: 1})
	pl := l.Pool()
	// Warm the single engine at version 0.
	if ok, err := pl.Ask("reach(a, b)"); err != nil || !ok {
		t.Fatalf("warmup: %v, %v", ok, err)
	}
	rebuilds := metrics.Default.LiveRebuilds.Value()
	applies := metrics.Default.LiveIncrementalApplies.Value()

	if _, err := l.Apply(mutations(t, []string{"edge(b, c)"}, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Apply(mutations(t, []string{"edge(c, a)"}, nil)); err != nil {
		t.Fatal(err)
	}
	// The idle engine is two versions stale: one lease must chain both
	// deltas.
	if ok, err := pl.Ask("reach(b, a)"); err != nil || !ok {
		t.Fatalf("reach(b, a) after commits = %v, %v", ok, err)
	}
	if _, err := l.Apply(mutations(t, nil, []string{"edge(a, b)"})); err != nil {
		t.Fatal(err)
	}
	// With edge(a, b) retracted, a no longer reaches b (the only remaining
	// edges are b->c and c->a), but b still reaches a — the DRed path must
	// delete exactly the reach facts that lost support.
	if ok, err := pl.Ask("reach(b, a)"); err != nil || !ok {
		t.Fatalf("reach(b, a) after retraction = %v, %v", ok, err)
	}
	if ok, _ := pl.Ask("reach(a, b)"); ok {
		t.Fatal("reach(a, b) survived retracting edge(a, b)")
	}

	if got := metrics.Default.LiveRebuilds.Value() - rebuilds; got != 0 {
		t.Errorf("commit path rebuilt %d engines; want 0 (incremental)", got)
	}
	if got := metrics.Default.LiveIncrementalApplies.Value() - applies; got < 2 {
		t.Errorf("incremental applies = %d, want >= 2", got)
	}
}

// TestCommitSubstrateSingleflight pins the thundering-herd fix: after a
// version swap with no usable delta history, K concurrent leases must
// share exactly ONE substrate build (fact interning) instead of K.
func TestCommitSubstrateSingleflight(t *testing.T) {
	const k = 8
	p := mustParse(t, incSrc)
	pl, err := NewPool(p, Options{PoolSize: k})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	// Plain SetProgram records no history, so every stale/new lease takes
	// the rebuild path.
	p2, err := p.withFacts(p.src.Facts, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := metrics.Default.LiveSubstrateBuilds.Value()
	pl.SetProgram(p2, 1)

	var ready, release sync.WaitGroup
	ready.Add(k)
	release.Add(1)
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		go func() {
			errs <- pl.Do(context.Background(), func(e *Engine) error {
				ready.Done()
				release.Wait() // hold all K engines concurrently
				if e.version != 1 {
					return fmt.Errorf("engine at version %d, want 1", e.version)
				}
				return nil
			})
		}()
	}
	ready.Wait()
	release.Done()
	for i := 0; i < k; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := metrics.Default.LiveSubstrateBuilds.Value() - before; got != 1 {
		t.Errorf("substrate builds after one swap with %d concurrent leases = %d, want 1", k, got)
	}
}
