// Package hypo is a hypothetical Datalog engine: Datalog extended with
// premises of the form B[add: C1, ..., Cm], meaning "B would be provable
// if the facts Ci were inserted into the database", plus stratified
// negation-as-failure. It implements the language and results of
//
//	Anthony J. Bonner, "Hypothetical Datalog: Negation and Linear
//	Recursion", PODS 1989.
//
// # Quick start
//
//	prog, err := hypo.Parse(`
//	    take(tony, his101).
//	    take(tony, eng201).
//	    grad(S) :- take(S, his101), take(S, eng201).
//	`)
//	eng, err := hypo.New(prog, hypo.Options{})
//	ok, err := eng.Ask("grad(mary)[add: take(mary, his101), take(mary, eng201)]")
//
// # Syntax
//
// Programs are lists of clauses terminated by periods. Constants and
// predicate names start lower-case (or are integers, or 'quoted');
// variables start upper-case. Rules use ":-"; negation is "not" or "~";
// hypothetical premises append "[add: atom, ...]" and/or "[del: atom,
// ...]" to an atom (deletion is the EXPTIME extension mentioned in the
// paper's introduction). Comments run from "%" or "//" to end of line.
//
// # Semantics
//
// Inference follows Definition 3 of the paper with negation-as-failure:
// an atom holds if it is in the (hypothetically extended) database or
// follows from a rule instance over the domain dom(R, DB). Programs must
// have stratified negation — recursion through negation is rejected. A
// variable occurring only in negated premises is quantified inside the
// negation ("not p(X)" with X unused elsewhere reads "no instance of p is
// provable"), which is the reading the paper's EVEN and Hamiltonian-path
// examples require.
//
// # Complexity
//
// Deciding a query is PSPACE-complete in general. Programs that are
// linearly stratified with k strata (section 4 of the paper) are
// data-complete for Σ_k^P; Stratification reports the analysis. Two
// evaluators are provided: the default uniform top-down tabled engine,
// and the paper's PROVE cascade (ModeCascade), which requires a linear
// stratification.
package hypo

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/engine"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/storage"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

// Program is a parsed, validated, compiled hypothetical Datalog program.
type Program struct {
	src  *ast.Program
	comp *ast.CProgram
	syms *symbols.Table
	strt *strat.Stratification // nil if not linearly stratifiable
	serr error                 // why strt is nil
}

// Parse parses, validates and compiles a program from source text.
// Negated-hypothetical premises (~A[add:B]) are rewritten away using the
// paper's section 3.1 transformation. Recursion through negation is an
// error; failing to be *linearly* stratifiable is not (the program is
// still evaluable, just without a Σ_k^P complexity bound or cascade
// support).
func Parse(src string) (*Program, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromAST(p)
}

// ParseFile is Parse over the contents of a file.
func ParseFile(path string) (*Program, error) {
	p, err := parser.ParseFile(path)
	if err != nil {
		return nil, err
	}
	return FromAST(p)
}

// FromAST builds a Program from an already-constructed AST. The AST is
// modified in place by the negated-hypothetical rewrite.
func FromAST(p *ast.Program) (*Program, error) {
	ast.RewriteNegHyp(p)
	if errs := ast.Validate(p); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, errors.New(strings.Join(msgs, "; "))
	}
	if err := strat.CheckNegation(p); err != nil {
		return nil, err
	}
	syms := symbols.NewTable()
	cp, err := ast.Compile(p, syms)
	if err != nil {
		return nil, err
	}
	out := &Program{src: p, comp: cp, syms: syms}
	out.strt, out.serr = strat.Stratify(p)
	return out, nil
}

// String renders the program back in surface syntax.
func (p *Program) String() string { return p.src.String() }

// WriteSnapshot serialises the program to a compact, checksummed binary
// snapshot (rules as canonical text, facts as interned binary blocks).
func (p *Program) WriteSnapshot(w io.Writer) error {
	return storage.Write(w, p.src)
}

// ReadSnapshot loads a program from a snapshot written by WriteSnapshot,
// running the same validation pipeline as Parse.
func ReadSnapshot(r io.Reader) (*Program, error) {
	prog, err := storage.Read(r)
	if err != nil {
		return nil, err
	}
	return FromAST(prog)
}

// AST returns the underlying syntax tree (after the section 3.1 rewrite).
func (p *Program) AST() *ast.Program { return p.src }

// Compiled returns the interned form used by the engines.
func (p *Program) Compiled() *ast.CProgram { return p.comp }

// Queries returns the "?-" queries embedded in the source, rendered back
// to surface syntax.
func (p *Program) Queries() []string {
	out := make([]string, len(p.src.Queries))
	for i, q := range p.src.Queries {
		out[i] = q.String()
	}
	return out
}

// Stratification describes the linear-stratification analysis of a
// program (section 4 of the paper).
type Stratification struct {
	// Linear reports whether the program is linearly stratifiable.
	Linear bool
	// Strata is k, the number of strata; by Theorem 1 the program's
	// data-complexity is in Σ_k^P. Zero when Linear is false.
	Strata int
	// Reason is the failure explanation when Linear is false.
	Reason string
	// Partition maps "pred/arity" to its partition number (odd = Δ part,
	// even = Σ part of its stratum).
	Partition map[string]int
}

// Stratification runs the Lemma 1 analysis.
func (p *Program) Stratification() Stratification {
	if p.strt == nil {
		return Stratification{Linear: false, Reason: p.serr.Error()}
	}
	defined := map[string]bool{}
	for _, r := range p.src.Rules {
		defined[ast.PredSig{Name: r.Head.Pred, Arity: r.Head.Arity()}.String()] = true
	}
	part := make(map[string]int, len(p.strt.Part))
	for sig, n := range p.strt.Part {
		if defined[sig.String()] {
			part[sig.String()] = n
		}
	}
	return Stratification{Linear: true, Strata: p.strt.NumStrata, Partition: part}
}

// Mode selects the evaluation architecture.
type Mode int

const (
	// ModeAuto uses the cascade when the program is linearly stratified
	// and the uniform engine otherwise.
	ModeAuto Mode = iota
	// ModeUniform always uses the top-down tabled engine.
	ModeUniform
	// ModeCascade uses the paper's PROVE_Σ/PROVE_Δ cascade; New fails if
	// the program is not linearly stratifiable.
	ModeCascade
)

// Options configure an Engine.
type Options struct {
	Mode Mode
	// MaxGoals aborts runaway queries after this many goal expansions in
	// the uniform engine (0 = unlimited). Ignored by the cascade.
	MaxGoals int64
	// NoTabling and NoPlanner disable engine features (for ablations).
	NoTabling bool
	NoPlanner bool
	// ExtraDomain adds constants to dom(R, DB) so that queries may
	// mention symbols absent from the program.
	ExtraDomain []string
}

// Engine answers queries against a program.
type Engine struct {
	prog   *Program
	asker  engine.Asker
	uni    *topdown.Engine // non-nil in uniform mode (for stats)
	cas    *engine.Cascade // non-nil in cascade mode
	domSet map[symbols.Const]bool
}

// New builds an engine for a program.
func New(p *Program, opts Options) (*Engine, error) {
	var extra []symbols.Const
	for _, name := range opts.ExtraDomain {
		extra = append(extra, p.syms.Const(name))
	}
	dom := ref.Domain(p.comp, extra...)
	domSet := make(map[symbols.Const]bool, len(dom))
	for _, c := range dom {
		domSet[c] = true
	}
	mode := opts.Mode
	if mode == ModeAuto {
		if p.strt != nil {
			mode = ModeCascade
		} else {
			mode = ModeUniform
		}
	}
	switch mode {
	case ModeUniform:
		uni := engine.NewUniform(p.comp, dom, topdown.Options{
			MaxGoals:  opts.MaxGoals,
			NoTabling: opts.NoTabling,
			NoPlanner: opts.NoPlanner,
		})
		return &Engine{prog: p, asker: uni, uni: uni, domSet: domSet}, nil
	case ModeCascade:
		if p.strt == nil {
			return nil, fmt.Errorf("hypo: cascade mode needs a linear stratification: %w", p.serr)
		}
		cas, err := engine.NewCascade(p.comp, p.strt, dom)
		if err != nil {
			return nil, err
		}
		return &Engine{prog: p, asker: cas, cas: cas, domSet: domSet}, nil
	default:
		return nil, fmt.Errorf("hypo: unknown mode %d", mode)
	}
}

// Program returns the engine's program.
func (e *Engine) Program() *Program { return e.prog }

// Ask evaluates a ground query premise given in surface syntax, e.g.
// "grad(tony)", "not yes", or "grad(s)[add: take(s, c1)]".
func (e *Engine) Ask(query string) (bool, error) {
	pr, numVars, err := e.compileQuery(query)
	if err != nil {
		return false, err
	}
	if numVars > 0 {
		return false, fmt.Errorf("hypo: Ask needs a ground query; use Query for %q", query)
	}
	return e.asker.AskPremise(pr, e.asker.EmptyState())
}

// Binding is one answer to a non-ground query: variable name to constant.
type Binding map[string]string

// Query evaluates a premise that may contain variables, returning all
// bindings over dom(R, DB) that make it hold. A ground query returns one
// empty binding if it holds and none otherwise.
func (e *Engine) Query(query string) ([]Binding, error) {
	pr, err := parser.ParsePremise(query)
	if err != nil {
		return nil, err
	}
	vars := map[string]int{}
	var names []string
	cpr, err := ast.CompilePremise(pr, e.prog.syms, vars, &names)
	if err != nil {
		return nil, err
	}
	return e.queryCompiled(cpr, names)
}

// queryCompiled runs a pre-compiled query premise; names map variable
// slots back to surface names. Unlike Query it does not touch the shared
// symbol table, so Pool can serialise compilation separately.
func (e *Engine) queryCompiled(cpr ast.CPremise, names []string) ([]Binding, error) {
	sols, err := engine.Solutions(e.asker, cpr, len(names), e.asker.EmptyState())
	if err != nil {
		return nil, err
	}
	out := make([]Binding, len(sols))
	for i, s := range sols {
		b := make(Binding, len(names))
		for slot, name := range names {
			b[name] = e.prog.syms.ConstName(s[slot])
		}
		out[i] = b
	}
	return out, nil
}

// AskUnder evaluates a ground query in a database hypothetically extended
// with the given ground atoms (surface syntax). This is the programmatic
// form of nesting everything under one [add: ...].
func (e *Engine) AskUnder(query string, added ...string) (bool, error) {
	st := e.asker.EmptyState()
	for _, src := range added {
		a, err := parser.ParseAtom(src)
		if err != nil {
			return false, err
		}
		if !a.IsGround() {
			return false, fmt.Errorf("hypo: added atom %q is not ground", src)
		}
		ca, err := compileGroundAtom(a, e.prog.syms)
		if err != nil {
			return false, err
		}
		if err := e.checkDomain(ast.CPremise{Atom: ca}); err != nil {
			return false, err
		}
		st = st.Add(e.asker.Interner().InternGround(ca))
	}
	pr, numVars, err := e.compileQuery(query)
	if err != nil {
		return false, err
	}
	if numVars > 0 {
		return false, fmt.Errorf("hypo: AskUnder needs a ground query")
	}
	return e.asker.AskPremise(pr, st)
}

// Explain returns a rendered derivation tree for a provable ground query
// (plain atoms only), or "" when the query does not hold. Only the
// uniform engine supports explanations.
func (e *Engine) Explain(query string) (string, error) {
	if e.uni == nil {
		return "", fmt.Errorf("hypo: Explain requires ModeUniform")
	}
	pr, numVars, err := e.compileQuery(query)
	if err != nil {
		return "", err
	}
	if numVars > 0 {
		return "", fmt.Errorf("hypo: Explain needs a ground query")
	}
	st := e.uni.EmptyState()
	switch pr.Kind {
	case ast.Plain:
		// proceed below
	case ast.Hyp:
		for _, a := range pr.Adds {
			st = st.Add(e.uni.Interner().InternGround(a))
		}
		for _, a := range pr.Dels {
			st = st.Del(e.uni.Interner().InternGround(a))
		}
	default:
		return "", fmt.Errorf("hypo: Explain supports plain and hypothetical queries")
	}
	proof, err := e.uni.Explain(e.uni.Interner().InternGround(pr.Atom), st)
	if err != nil {
		return "", err
	}
	if proof == nil {
		return "", nil
	}
	return proof.String(), nil
}

// Stats reports evaluation counters: the uniform engine's in uniform
// mode, or the sum over the cascade's PROVE_Σ engines in cascade mode.
func (e *Engine) Stats() topdown.Stats {
	if e.uni != nil {
		return e.uni.Stats()
	}
	var sum topdown.Stats
	for i := 1; i <= e.cas.NumStrata(); i++ {
		s := e.cas.SigmaStats(i)
		sum.Goals += s.Goals
		sum.TableHits += s.TableHits
		sum.LoopCuts += s.LoopCuts
		sum.Enumerated += s.Enumerated
		sum.NegCalls += s.NegCalls
		sum.TableSize += s.TableSize
		if s.MaxDepth > sum.MaxDepth {
			sum.MaxDepth = s.MaxDepth
		}
	}
	return sum
}

func (e *Engine) compileQuery(query string) (ast.CPremise, int, error) {
	pr, err := parser.ParsePremise(query)
	if err != nil {
		return ast.CPremise{}, 0, err
	}
	vars := map[string]int{}
	var names []string
	cpr, err := ast.CompilePremise(pr, e.prog.syms, vars, &names)
	if err != nil {
		return ast.CPremise{}, 0, err
	}
	if err := e.checkDomain(cpr); err != nil {
		return ast.CPremise{}, 0, err
	}
	return cpr, len(names), nil
}

// checkDomain rejects queries mentioning constants outside dom(R, DB):
// variable enumeration and negation-as-failure range over the engine's
// fixed domain, so a fresh constant would silently be excluded from them
// and could produce wrong answers. Declare such constants up front with
// Options.ExtraDomain.
func (e *Engine) checkDomain(pr ast.CPremise) error {
	check := func(a ast.CAtom) error {
		for _, t := range a.Args {
			if !t.IsVar() && !e.domSet[t.ConstID()] {
				return fmt.Errorf("hypo: query constant %q is outside dom(R, DB); list it in Options.ExtraDomain",
					e.prog.syms.ConstName(t.ConstID()))
			}
		}
		return nil
	}
	if err := check(pr.Atom); err != nil {
		return err
	}
	for _, a := range pr.Adds {
		if err := check(a); err != nil {
			return err
		}
	}
	for _, a := range pr.Dels {
		if err := check(a); err != nil {
			return err
		}
	}
	return nil
}

func compileGroundAtom(a ast.Atom, syms *symbols.Table) (ast.CAtom, error) {
	vars := map[string]int{}
	var names []string
	pr, err := ast.CompilePremise(ast.PlainP(a), syms, vars, &names)
	if err != nil {
		return ast.CAtom{}, err
	}
	if len(names) > 0 {
		return ast.CAtom{}, fmt.Errorf("hypo: atom %s is not ground", a)
	}
	return pr.Atom, nil
}
