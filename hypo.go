// Package hypo is a hypothetical Datalog engine: Datalog extended with
// premises of the form B[add: C1, ..., Cm], meaning "B would be provable
// if the facts Ci were inserted into the database", plus stratified
// negation-as-failure. It implements the language and results of
//
//	Anthony J. Bonner, "Hypothetical Datalog: Negation and Linear
//	Recursion", PODS 1989.
//
// # Quick start
//
//	prog, err := hypo.Parse(`
//	    take(tony, his101).
//	    take(tony, eng201).
//	    grad(S) :- take(S, his101), take(S, eng201).
//	`)
//	eng, err := hypo.New(prog, hypo.Options{})
//	ok, err := eng.Ask("grad(mary)[add: take(mary, his101), take(mary, eng201)]")
//
// # Syntax
//
// Programs are lists of clauses terminated by periods. Constants and
// predicate names start lower-case (or are integers, or 'quoted');
// variables start upper-case. Rules use ":-"; negation is "not" or "~";
// hypothetical premises append "[add: atom, ...]" and/or "[del: atom,
// ...]" to an atom (deletion is the EXPTIME extension mentioned in the
// paper's introduction). Comments run from "%" or "//" to end of line.
//
// # Semantics
//
// Inference follows Definition 3 of the paper with negation-as-failure:
// an atom holds if it is in the (hypothetically extended) database or
// follows from a rule instance over the domain dom(R, DB). Programs must
// have stratified negation — recursion through negation is rejected. A
// variable occurring only in negated premises is quantified inside the
// negation ("not p(X)" with X unused elsewhere reads "no instance of p is
// provable"), which is the reading the paper's EVEN and Hamiltonian-path
// examples require.
//
// # Complexity
//
// Deciding a query is PSPACE-complete in general. Programs that are
// linearly stratified with k strata (section 4 of the paper) are
// data-complete for Σ_k^P; Stratification reports the analysis. Two
// evaluators are provided: the default uniform top-down tabled engine,
// and the paper's PROVE cascade (ModeCascade), which requires a linear
// stratification.
package hypo

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"sync"
	"time"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/cache"
	"hypodatalog/internal/depgraph"
	"hypodatalog/internal/engine"
	"hypodatalog/internal/facts"
	"hypodatalog/internal/magic"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/ref"
	"hypodatalog/internal/storage"
	"hypodatalog/internal/strat"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

// Sentinel errors for aborted evaluations, re-exported from the
// evaluation layer. Test with errors.Is; recover the abort's work
// snapshot with errors.As on *AbortError.
var (
	// ErrBudget means Options.MaxGoals expansions were spent without an
	// answer.
	ErrBudget = topdown.ErrBudget
	// ErrCanceled means the query's context was canceled mid-evaluation.
	ErrCanceled = topdown.ErrCanceled
	// ErrDeadline means the query's context deadline expired
	// mid-evaluation.
	ErrDeadline = topdown.ErrDeadline
	// ErrMemory means the query grew the engine's tracked memory
	// footprint past Options.MaxMemoryBytes.
	ErrMemory = topdown.ErrMemory
)

// AbortError wraps ErrBudget, ErrCanceled or ErrDeadline with the
// configured limit (for ErrBudget) and a Stats snapshot of the work done
// before the abort.
type AbortError = topdown.AbortError

// Stats is the evaluation-work snapshot reported by Engine.Stats and
// carried by AbortError, re-exported so callers (e.g. internal/server's
// access logs) need not import the evaluation layer.
type Stats = topdown.Stats

// Program is a parsed, validated, compiled hypothetical Datalog program.
type Program struct {
	src  *ast.Program
	comp *ast.CProgram
	syms *symbols.Table
	strt *strat.Stratification // nil if not linearly stratifiable
	serr error                 // why strt is nil

	// pinDom, when non-nil, overrides dom(R, DB) computation: every engine
	// built from this Program enumerates exactly these constants. Live
	// pools pin the domain at OpenLive so that all data versions of one
	// program agree on what "for all constants" means — recomputing dom
	// per version would let a retraction silently shrink the range of
	// negation-as-failure between two queries.
	pinDom []symbols.Const

	// magicSet lazily holds the program's shared demand-pattern cache
	// (the magic-sets transform, compiled once per queried predicate).
	// Every demand-driven engine built from this Program shares it.
	magicOnce sync.Once
	magicSet  *magic.Set
}

// demand returns the program's shared magic-sets pattern cache, building
// it on first use.
func (p *Program) demand() *magic.Set {
	p.magicOnce.Do(func() { p.magicSet = magic.NewSet(p.src, p.syms) })
	return p.magicSet
}

// Parse parses, validates and compiles a program from source text.
// Negated-hypothetical premises (~A[add:B]) are rewritten away using the
// paper's section 3.1 transformation. Recursion through negation is an
// error; failing to be *linearly* stratifiable is not (the program is
// still evaluable, just without a Σ_k^P complexity bound or cascade
// support).
func Parse(src string) (*Program, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromAST(p)
}

// ParseFile is Parse over the contents of a file.
func ParseFile(path string) (*Program, error) {
	p, err := parser.ParseFile(path)
	if err != nil {
		return nil, err
	}
	return FromAST(p)
}

// FromAST builds a Program from an already-constructed AST. The AST is
// modified in place by the negated-hypothetical rewrite.
func FromAST(p *ast.Program) (*Program, error) {
	ast.RewriteNegHyp(p)
	if errs := ast.Validate(p); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, errors.New(strings.Join(msgs, "; "))
	}
	if err := strat.CheckNegation(p); err != nil {
		return nil, err
	}
	syms := symbols.NewTable()
	cp, err := ast.Compile(p, syms)
	if err != nil {
		return nil, err
	}
	out := &Program{src: p, comp: cp, syms: syms}
	out.strt, out.serr = strat.Stratify(p)
	return out, nil
}

// String renders the program back in surface syntax.
func (p *Program) String() string { return p.src.String() }

// WriteSnapshot serialises the program to a compact, checksummed binary
// snapshot (rules as canonical text, facts as interned binary blocks).
func (p *Program) WriteSnapshot(w io.Writer) error {
	return storage.Write(w, p.src)
}

// ReadSnapshot loads a program from a snapshot written by WriteSnapshot,
// running the same validation pipeline as Parse.
func ReadSnapshot(r io.Reader) (*Program, error) {
	prog, err := storage.Read(r)
	if err != nil {
		return nil, err
	}
	return FromAST(prog)
}

// withFacts derives a Program with the same rules, queries, symbol table
// and stratification but a different base fact set — one data version of
// a live program. Only the facts are recompiled: rules, head indexes and
// the IDB set are shared structurally with the receiver, so deriving a
// version is O(|facts|), not O(|program|). The caller passes the pinned
// domain every version must enumerate (see Program.pinDom).
func (p *Program) withFacts(fs []ast.Atom, pinDom []symbols.Const) (*Program, error) {
	cfacts := make([]ast.CAtom, 0, len(fs))
	maxAr := p.comp.MaxArity
	for _, f := range fs {
		ca, err := compileGroundAtom(f, p.syms)
		if err != nil {
			return nil, err
		}
		cfacts = append(cfacts, ca)
		if n := len(ca.Args); n > maxAr {
			maxAr = n
		}
	}
	src := &ast.Program{Rules: p.src.Rules, Facts: fs, Queries: p.src.Queries}
	comp := &ast.CProgram{
		Syms:     p.comp.Syms,
		Rules:    p.comp.Rules,
		Facts:    cfacts,
		Queries:  p.comp.Queries,
		ByHead:   p.comp.ByHead,
		IDB:      p.comp.IDB,
		MaxArity: maxAr,
	}
	return &Program{src: src, comp: comp, syms: p.syms, strt: p.strt, serr: p.serr, pinDom: pinDom}, nil
}

// AST returns the underlying syntax tree (after the section 3.1 rewrite).
func (p *Program) AST() *ast.Program { return p.src }

// RulesHash is a fingerprint of the program's rule set (canonical text,
// facts excluded). Replication uses it as a compatibility check: a
// replica may only apply a primary's WAL stream when both run the same
// rules, since validation, stratification and the pinned base domain all
// derive from them.
func (p *Program) RulesHash() uint64 {
	h := fnv.New64a()
	for _, r := range p.src.Rules {
		_, _ = io.WriteString(h, r.String())
		_, _ = h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// Compiled returns the interned form used by the engines.
func (p *Program) Compiled() *ast.CProgram { return p.comp }

// Queries returns the "?-" queries embedded in the source, rendered back
// to surface syntax.
func (p *Program) Queries() []string {
	out := make([]string, len(p.src.Queries))
	for i, q := range p.src.Queries {
		out[i] = q.String()
	}
	return out
}

// Stratification describes the linear-stratification analysis of a
// program (section 4 of the paper).
type Stratification struct {
	// Linear reports whether the program is linearly stratifiable.
	Linear bool
	// Strata is k, the number of strata; by Theorem 1 the program's
	// data-complexity is in Σ_k^P. Zero when Linear is false.
	Strata int
	// Reason is the failure explanation when Linear is false.
	Reason string
	// Partition maps "pred/arity" to its partition number (odd = Δ part,
	// even = Σ part of its stratum).
	Partition map[string]int
}

// Stratification runs the Lemma 1 analysis.
func (p *Program) Stratification() Stratification {
	if p.strt == nil {
		return Stratification{Linear: false, Reason: p.serr.Error()}
	}
	defined := map[string]bool{}
	for _, r := range p.src.Rules {
		defined[ast.PredSig{Name: r.Head.Pred, Arity: r.Head.Arity()}.String()] = true
	}
	part := make(map[string]int, len(p.strt.Part))
	for sig, n := range p.strt.Part {
		if defined[sig.String()] {
			part[sig.String()] = n
		}
	}
	return Stratification{Linear: true, Strata: p.strt.NumStrata, Partition: part}
}

// Mode selects the evaluation architecture.
type Mode int

const (
	// ModeAuto uses the cascade when the program is linearly stratified
	// and the uniform engine otherwise.
	ModeAuto Mode = iota
	// ModeUniform always uses the top-down tabled engine.
	ModeUniform
	// ModeCascade uses the paper's PROVE_Σ/PROVE_Δ cascade; New fails if
	// the program is not linearly stratifiable.
	ModeCascade
)

// Options configure an Engine.
type Options struct {
	Mode Mode
	// MaxGoals aborts runaway queries after this many goal expansions in
	// the uniform engine (0 = unlimited). Ignored by the cascade.
	MaxGoals int64
	// MaxMemoryBytes aborts a query once it has grown the engine's
	// tracked memory footprint (interner, base database, memo tables,
	// cached Δ materialisations) by more than this many bytes, surfaced
	// as an *AbortError wrapping ErrMemory. The budget is per query: a
	// warm engine's existing footprint never counts against it. Zero
	// means unlimited (accounting stays on, so Pool.MemBytes and tenant
	// quotas still see the footprint). Enforced in both modes.
	MaxMemoryBytes int64
	// NoTabling and NoPlanner disable engine features (for ablations).
	NoTabling bool
	NoPlanner bool
	// ExtraDomain adds constants to dom(R, DB) so that queries may
	// mention symbols absent from the program.
	ExtraDomain []string
	// PoolSize bounds the number of engines a Pool keeps alive (and hence
	// its maximum concurrency). Zero means GOMAXPROCS. Ignored by New.
	PoolSize int
	// CacheBytes enables the versioned answer cache: Ask/Query/AskUnder
	// answers are memoised keyed by (data version, canonical query,
	// sorted hypothetical adds) up to this byte budget, with singleflight
	// coalescing of concurrent identical misses on a Pool. Entries from
	// older data versions are never served after a hot swap (the version
	// is part of the key); they expire lazily under LRU pressure. Zero
	// disables caching.
	CacheBytes int64
	// DemandDriven enables magic-sets demand-driven evaluation: ground
	// goals on intensional predicates are answered by evaluating a
	// demand-restricted rewrite of the program (adorned by the goal's
	// bound arguments, seeded through the query state's hypothetical
	// delta) instead of materialising whole strata. Goals the rewrite
	// cannot restrict — free-argument patterns, predicates consulted
	// under negation by their own cone — transparently fall back to full
	// evaluation; answers are identical either way (the difftest fifth
	// engine holds both modes to agreement). Answer-cache keys are
	// namespaced per mode, so demand and full answers never share
	// entries. Progress is visible in the magic_* expvars.
	DemandDriven bool
	// Metrics selects the metric set this engine (and any Pool, Live or
	// cache built from these options) reports into. Nil means
	// metrics.Default — the process-wide set published under the legacy
	// "hypo" expvar name. A multi-tenant process gives each tenant its own
	// set so one tenant's counters never mix with another's.
	Metrics *metrics.Set
}

// metricSet resolves Options.Metrics, defaulting to the process-wide set.
func (o Options) metricSet() *metrics.Set {
	if o.Metrics != nil {
		return o.Metrics
	}
	return metrics.Default
}

// Engine answers queries against a program.
type Engine struct {
	prog   *Program
	asker  engine.Asker
	uni    *topdown.Engine // non-nil in uniform mode (for stats)
	cas    *engine.Cascade // non-nil in cascade mode
	dem    *engine.Demand  // non-nil when Options.DemandDriven
	domSet map[symbols.Const]bool

	// cache memoises answers for a standalone engine (Options.CacheBytes
	// on New). Engines inside a Pool carry no cache of their own — the
	// Pool owns one shared cache above the lease, so coalesced callers
	// never consume an engine.
	cache *cache.Cache

	// version is the data version of the program this engine was built
	// against; set by Pool on engines serving a live program, zero
	// otherwise. Memo tables, interner and base DB are all private to the
	// engine, so an engine never observes facts from any other version.
	version uint64

	// mets is the metric set this engine reports into (never nil; defaults
	// to metrics.Default).
	mets *metrics.Set

	// mem tracks the engine's approximate heap footprint and enforces
	// Options.MaxMemoryBytes per query. Always non-nil for engines built
	// by New/newFromSubstrate; shared by every component of a cascade.
	mem *topdown.MemTracker
}

// MemBytes returns the engine's tracked heap footprint: interner, base
// database, memo tables and cached Δ materialisations. It is an
// estimator (linear in the real footprint), the quantity per-tenant
// memory quotas account idle pooled engines at.
func (e *Engine) MemBytes() int64 { return e.mem.Current() }

// beginMem snapshots the footprint as the next query's budget baseline.
// Engine methods do this via track; the Pool calls it before evaluating
// on a leased engine.
func (e *Engine) beginMem() { e.mem.Begin() }

// newMemTracker assembles the per-engine footprint tracker: explicit
// charges land in it directly, and the substrate counters are polled as
// sources. One tracker serves a whole cascade — its components share a
// single interner and database, so the sources are registered here once.
func newMemTracker(max int64, in *facts.Interner, base *facts.DB) *topdown.MemTracker {
	t := topdown.NewMemTracker(max)
	t.AddSource(in.MemBytes)
	t.AddSource(base.MemBytes)
	t.Begin()
	return t
}

// DataVersion reports the data version of the base database this engine
// was built against (0 for engines outside a live pool). During a
// Pool.Do lease it is stable: a concurrent commit produces new engines
// at the new version rather than mutating leased ones.
func (e *Engine) DataVersion() uint64 { return e.version }

// ApplyDelta mutates the engine's base fact set in place — asserts are
// inserted, retracts removed, both validated like Live mutations (ground,
// extensional predicate, constants inside dom(R, DB)) — and incrementally
// maintains the engine's derived state instead of rebuilding it: memo
// entries and Δ-part materialisations outside the affected cone of the
// changed predicates survive untouched, those inside it are updated
// semi-naively (additions) and by delete-and-rederive (retractions), or
// dropped for lazy recomputation where in-place maintenance is unsound.
//
// Mutations apply in batch order against the current base, and only the
// effective changes (facts whose membership actually flips) propagate —
// asserting a present fact or retracting an absent one is a no-op.
// The engine's Program() still reports the fact set it was built with;
// queries answer against the mutated base. Like every Engine method,
// ApplyDelta must not run concurrently with queries on the same engine.
func (e *Engine) ApplyDelta(asserts, retracts []string) error {
	ms, err := ParseMutations(asserts, retracts)
	if err != nil {
		return err
	}
	for _, m := range ms {
		if err := validateMutation(m, e.prog, e.domSet); err != nil {
			return err
		}
	}
	base := e.asker.EmptyState().Base
	in := e.asker.Interner()
	added, removed := effectiveDelta(ms, func(a ast.Atom) bool {
		ca, cerr := compileGroundAtom(a, e.prog.syms)
		if cerr != nil {
			return false
		}
		args := make([]symbols.Const, len(ca.Args))
		for i, t := range ca.Args {
			args[i] = t.ConstID()
		}
		id, ok := in.Lookup(ca.Pred, args)
		return ok && base.Has(id)
	})
	cadd, crem, seeds, err := compileDelta(added, removed, e.prog.syms)
	if err != nil {
		return err
	}
	if len(cadd)+len(crem) == 0 {
		return nil
	}
	// Demand-driven engines have magic rules installed beside the program;
	// the cone must see their edges so commits that can move a demanded
	// answer invalidate the demand caches (and prune the right tables).
	g := depgraph.Build(e.prog.src)
	if e.dem != nil {
		g.Extend(e.dem.InstalledRules())
	}
	cone := coneFromGraph(g, e.prog.syms, seeds)
	if err := e.applyDeltaCompiled(cadd, crem, cone); err != nil {
		return err
	}
	// The private answer cache keys on the data version; bumping it makes
	// pre-delta entries unreachable without flushing the whole cache.
	e.version++
	return nil
}

// applyDeltaCompiled applies an effective, already-compiled base-fact
// delta to the engine in place. On error the engine may be half-mutated
// and must be discarded (Pool rebuilds; the public ApplyDelta surfaces
// the error).
func (e *Engine) applyDeltaCompiled(added, removed []ast.CAtom, cone map[symbols.Pred]bool) error {
	in := e.asker.Interner()
	addIDs := make([]facts.AtomID, len(added))
	for i, ca := range added {
		addIDs[i] = in.InternGround(ca)
	}
	remIDs := make([]facts.AtomID, len(removed))
	for i, ca := range removed {
		remIDs[i] = in.InternGround(ca)
	}
	var err error
	if e.cas != nil {
		err = e.cas.ApplyDelta(addIDs, remIDs, cone)
	} else {
		err = e.uni.ApplyDelta(addIDs, remIDs, cone)
	}
	if err != nil {
		return err
	}
	if e.dem != nil {
		e.dem.Invalidate(cone, addIDs, remIDs)
	}
	return nil
}

// compileDelta compiles effective surface-level delta atoms and collects
// their distinct predicate signatures — the seeds of the affected cone.
func compileDelta(added, removed []ast.Atom, syms *symbols.Table) (cadd, crem []ast.CAtom, seeds []ast.PredSig, err error) {
	seen := map[ast.PredSig]bool{}
	note := func(a ast.Atom) {
		sig := ast.PredSig{Name: a.Pred, Arity: a.Arity()}
		if !seen[sig] {
			seen[sig] = true
			seeds = append(seeds, sig)
		}
	}
	for _, a := range added {
		ca, cerr := compileGroundAtom(a, syms)
		if cerr != nil {
			return nil, nil, nil, cerr
		}
		cadd = append(cadd, ca)
		note(a)
	}
	for _, a := range removed {
		ca, cerr := compileGroundAtom(a, syms)
		if cerr != nil {
			return nil, nil, nil, cerr
		}
		crem = append(crem, ca)
		note(a)
	}
	return cadd, crem, seeds, nil
}

// coneFromGraph translates the dependency-graph cone of the seed
// predicates into interned predicates. Cone members never interned
// (mentioned by no compiled rule or fact) are dropped — no evaluation
// can reference them.
func coneFromGraph(g *depgraph.Graph, syms *symbols.Table, seeds []ast.PredSig) map[symbols.Pred]bool {
	sigCone := g.Cone(seeds)
	cone := make(map[symbols.Pred]bool, len(sigCone))
	for sig := range sigCone {
		if pr, ok := syms.LookupPred(sig.Name, sig.Arity); ok {
			cone[pr] = true
		}
	}
	return cone
}

// New builds an engine for a program.
func New(p *Program, opts Options) (*Engine, error) {
	dom, domSet := domainInfo(p, opts)
	mode := opts.Mode
	if mode == ModeAuto {
		if p.strt != nil {
			mode = ModeCascade
		} else {
			mode = ModeUniform
		}
	}
	mets := opts.metricSet()
	var ac *cache.Cache
	if opts.CacheBytes > 0 {
		ac = cache.New(opts.CacheBytes, mets)
	}
	switch mode {
	case ModeUniform:
		uni := engine.NewUniform(p.comp, dom, topdown.Options{
			MaxGoals:  opts.MaxGoals,
			NoTabling: opts.NoTabling,
			NoPlanner: opts.NoPlanner,
		})
		mem := newMemTracker(opts.MaxMemoryBytes, uni.Interner(), uni.Base())
		uni.SetMem(mem)
		return wrapDemand(&Engine{prog: p, asker: uni, uni: uni, domSet: domSet, cache: ac, mets: mets, mem: mem}, p, opts), nil
	case ModeCascade:
		if p.strt == nil {
			return nil, fmt.Errorf("hypo: cascade mode needs a linear stratification: %w", p.serr)
		}
		cas, err := engine.NewCascade(p.comp, p.strt, dom)
		if err != nil {
			return nil, err
		}
		mem := newMemTracker(opts.MaxMemoryBytes, cas.Interner(), cas.Base())
		cas.SetMemTracker(mem)
		return wrapDemand(&Engine{prog: p, asker: cas, cas: cas, domSet: domSet, cache: ac, mets: mets, mem: mem}, p, opts), nil
	default:
		return nil, fmt.Errorf("hypo: unknown mode %d", mode)
	}
}

// newFromSubstrate builds an engine whose interner and base database are
// private clones of a shared per-version substrate (see Pool), skipping
// the per-engine fact re-interning that New performs. The clones keep
// the substrate's atom-id assignment, so deltas interned against one
// engine's interner carry over to any sibling cloned from the same
// substrate.
func newFromSubstrate(p *Program, opts Options, subIn *facts.Interner, subDB *facts.DB) (*Engine, error) {
	dom, domSet := domainInfo(p, opts)
	mode := opts.Mode
	if mode == ModeAuto {
		if p.strt != nil {
			mode = ModeCascade
		} else {
			mode = ModeUniform
		}
	}
	mets := opts.metricSet()
	var ac *cache.Cache
	if opts.CacheBytes > 0 {
		ac = cache.New(opts.CacheBytes, mets)
	}
	in := subIn.Clone()
	base := subDB.CloneFor(in)
	switch mode {
	case ModeUniform:
		uni := topdown.NewWithBase(p.comp, base, dom, topdown.Options{
			MaxGoals:  opts.MaxGoals,
			NoTabling: opts.NoTabling,
			NoPlanner: opts.NoPlanner,
		})
		mem := newMemTracker(opts.MaxMemoryBytes, in, base)
		uni.SetMem(mem)
		return wrapDemand(&Engine{prog: p, asker: uni, uni: uni, domSet: domSet, cache: ac, mets: mets, mem: mem}, p, opts), nil
	case ModeCascade:
		if p.strt == nil {
			return nil, fmt.Errorf("hypo: cascade mode needs a linear stratification: %w", p.serr)
		}
		cas, err := engine.NewCascadeWithBase(p.comp, p.strt, dom, base)
		if err != nil {
			return nil, err
		}
		mem := newMemTracker(opts.MaxMemoryBytes, in, base)
		cas.SetMemTracker(mem)
		return wrapDemand(&Engine{prog: p, asker: cas, cas: cas, domSet: domSet, cache: ac, mets: mets, mem: mem}, p, opts), nil
	default:
		return nil, fmt.Errorf("hypo: unknown mode %d", mode)
	}
}

// wrapDemand turns on demand-driven evaluation for a freshly built
// engine when requested: the asker is wrapped in an engine.Demand that
// answers ground goals through the program's magic-transformed rewrite
// and falls back to the wrapped engine everywhere else.
func wrapDemand(e *Engine, p *Program, opts Options) *Engine {
	if !opts.DemandDriven {
		return e
	}
	d := engine.NewDemand(e.asker, p.demand(), p.comp, e.mets)
	d.SetMem(e.mem)
	e.asker = d
	e.dem = d
	return e
}

// domainInfo computes dom(R, DB) plus Options.ExtraDomain, as both the
// slice the engines enumerate over and the set the query validator uses.
// A pinned domain (live programs) is used verbatim — it was computed once
// at OpenLive and must stay identical across data versions.
func domainInfo(p *Program, opts Options) ([]symbols.Const, map[symbols.Const]bool) {
	dom := p.pinDom
	if dom == nil {
		var extra []symbols.Const
		for _, name := range opts.ExtraDomain {
			extra = append(extra, p.syms.Const(name))
		}
		dom = ref.Domain(p.comp, extra...)
	}
	domSet := make(map[symbols.Const]bool, len(dom))
	for _, c := range dom {
		domSet[c] = true
	}
	return dom, domSet
}

// Program returns the engine's program.
func (e *Engine) Program() *Program { return e.prog }

// Ask evaluates a ground query premise given in surface syntax, e.g.
// "grad(tony)", "not yes", or "grad(s)[add: take(s, c1)]".
func (e *Engine) Ask(query string) (bool, error) {
	return e.AskCtx(context.Background(), query)
}

// AskCtx is Ask under a context: when ctx is canceled or its deadline
// expires mid-evaluation, AskCtx returns an *AbortError wrapping
// ErrCanceled or ErrDeadline within a bounded number of goal expansions.
// An Engine is single-flight — the context governs the one running query.
func (e *Engine) AskCtx(ctx context.Context, query string) (bool, error) {
	fin := e.track()
	ok, err := e.askCtx(ctx, query)
	fin(err)
	return ok, err
}

func (e *Engine) askCtx(ctx context.Context, query string) (bool, error) {
	pr, err := parser.ParsePremise(query)
	if err != nil {
		return false, err
	}
	cpr, names, err := compilePremiseChecked(pr, e.prog.syms, e.domSet)
	if err != nil {
		return false, err
	}
	if len(names) > 0 {
		return false, fmt.Errorf("hypo: Ask needs a ground query; use Query for %q", query)
	}
	if e.cache == nil {
		ok, err := e.asker.AskPremiseCtx(ctx, cpr, e.asker.EmptyState())
		return ok, e.enrich(err)
	}
	return e.cachedBool(ctx, e.ckey(askCacheKey(pr)), func() (bool, error) {
		return e.asker.AskPremiseCtx(ctx, cpr, e.asker.EmptyState())
	})
}

// cachedBool memoises a ground answer in the engine's private cache
// keyed at the engine's data version.
func (e *Engine) cachedBool(ctx context.Context, key string, eval func() (bool, error)) (bool, error) {
	v, _, err := e.cache.Do(ctx, cache.Key{Version: e.version, Query: key}, func() (cache.Computed, error) {
		ok, err := eval()
		if err != nil {
			return cache.Computed{}, e.enrich(err)
		}
		return cache.Computed{Val: ok, Bytes: boolAnswerBytes, Store: true}, nil
	})
	if err != nil {
		return false, wrapCacheWait(err)
	}
	return v.(bool), nil
}

// Binding is one answer to a non-ground query: variable name to constant.
type Binding map[string]string

// Query evaluates a premise that may contain variables, returning all
// bindings over dom(R, DB) that make it hold. A ground query returns one
// empty binding if it holds and none otherwise.
func (e *Engine) Query(query string) ([]Binding, error) {
	return e.QueryCtx(context.Background(), query)
}

// QueryCtx is Query under a context; see AskCtx for abort semantics.
func (e *Engine) QueryCtx(ctx context.Context, query string) ([]Binding, error) {
	fin := e.track()
	bs, err := e.queryCtx(ctx, query)
	fin(err)
	return bs, err
}

func (e *Engine) queryCtx(ctx context.Context, query string) ([]Binding, error) {
	var out []Binding
	err := e.queryEachCtx(ctx, query, func(b Binding) error {
		out = append(out, b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// QueryEach evaluates a premise like Query but streams each binding to
// yield as it is found instead of materialising the answer set; see
// QueryEachCtx.
func (e *Engine) QueryEach(query string, yield func(Binding) error) error {
	return e.QueryEachCtx(context.Background(), query, yield)
}

// QueryEachCtx is the streaming form of QueryCtx: each binding is passed
// to yield in enumeration order as soon as its proof succeeds, so answer
// sets larger than memory can be forwarded incrementally. A non-nil
// error from yield stops the enumeration and is returned verbatim;
// evaluation aborts surface as *AbortError like QueryCtx.
func (e *Engine) QueryEachCtx(ctx context.Context, query string, yield func(Binding) error) error {
	fin := e.track()
	err := e.queryEachCtx(ctx, query, yield)
	fin(err)
	return err
}

func (e *Engine) queryEachCtx(ctx context.Context, query string, yield func(Binding) error) error {
	pr, err := parser.ParsePremise(query)
	if err != nil {
		return err
	}
	cpr, names, err := compilePremiseLoose(pr, e.prog.syms)
	if err != nil {
		return err
	}
	if e.cache == nil {
		return e.enrich(e.queryEachCompiledCtx(ctx, cpr, names, yield))
	}
	v, st, err := e.cache.Do(ctx, cache.Key{Version: e.version, Query: e.ckey(queryCacheKey(pr))}, func() (cache.Computed, error) {
		// Leader: stream each binding to yield as it is proved while
		// also materialising the answer set for the cache. A yield abort
		// surfaces verbatim and caches nothing — the set is partial.
		acc := []Binding{}
		err := e.queryEachCompiledCtx(ctx, cpr, names, func(b Binding) error {
			acc = append(acc, b)
			return yield(b)
		})
		if err != nil {
			return cache.Computed{}, e.enrich(err)
		}
		return cache.Computed{Val: acc, Bytes: bindingsBytes(acc), Store: true}, nil
	})
	if err != nil {
		return wrapCacheWait(err)
	}
	if st == cache.Miss {
		return nil // already streamed during evaluation
	}
	for _, b := range v.([]Binding) {
		if err := yield(b); err != nil {
			return err
		}
	}
	return nil
}

// queryEachCompiledCtx is the streaming core shared by QueryCtx and
// QueryEachCtx: solutions come straight off the enumerator, are rendered
// to surface-name bindings, and handed to yield one at a time.
func (e *Engine) queryEachCompiledCtx(ctx context.Context, cpr ast.CPremise, names []string, yield func(Binding) error) error {
	return engine.SolutionsEachCtx(ctx, e.asker, cpr, len(names), e.asker.EmptyState(), func(s engine.Solution) error {
		b := make(Binding, len(names))
		for slot, name := range names {
			b[name] = e.prog.syms.ConstName(s[slot])
		}
		return yield(b)
	})
}

// AskUnder evaluates a ground query in a database hypothetically extended
// with the given ground atoms (surface syntax). This is the programmatic
// form of nesting everything under one [add: ...].
func (e *Engine) AskUnder(query string, added ...string) (bool, error) {
	return e.AskUnderCtx(context.Background(), query, added...)
}

// AskUnderCtx is AskUnder under a context; see AskCtx for abort
// semantics.
func (e *Engine) AskUnderCtx(ctx context.Context, query string, added ...string) (bool, error) {
	fin := e.track()
	ok, err := e.askUnderCtx(ctx, query, added)
	fin(err)
	return ok, err
}

func (e *Engine) askUnderCtx(ctx context.Context, query string, added []string) (bool, error) {
	pr, adds, key, err := compileAskUnder(query, added, e.prog.syms, e.domSet)
	if err != nil {
		return false, err
	}
	if e.cache == nil {
		ok, err := e.askUnderCompiled(ctx, pr, adds)
		return ok, e.enrich(err)
	}
	return e.cachedBool(ctx, e.ckey(key), func() (bool, error) {
		return e.askUnderCompiled(ctx, pr, adds)
	})
}

// askUnderCompiled runs a pre-compiled AskUnder; like queryCompiledCtx it
// never touches the shared symbol table.
func (e *Engine) askUnderCompiled(ctx context.Context, pr ast.CPremise, adds []ast.CAtom) (bool, error) {
	st := e.asker.EmptyState()
	for _, ca := range adds {
		st = st.Add(e.asker.Interner().InternGround(ca))
	}
	return e.asker.AskPremiseCtx(ctx, pr, st)
}

// compileAskUnder compiles an AskUnder query and its added atoms,
// domain-validating everything before any interning. The third result is
// the canonical answer-cache key for the operation (kind, rendered
// premise, sorted adds).
func compileAskUnder(query string, added []string, syms *symbols.Table, domSet map[symbols.Const]bool) (ast.CPremise, []ast.CAtom, string, error) {
	adds := make([]ast.CAtom, 0, len(added))
	surface := make([]ast.Atom, 0, len(added))
	for _, src := range added {
		a, err := parser.ParseAtom(src)
		if err != nil {
			return ast.CPremise{}, nil, "", err
		}
		if !a.IsGround() {
			return ast.CPremise{}, nil, "", fmt.Errorf("hypo: added atom %q is not ground", src)
		}
		if err := checkAtomDomain(a, syms, domSet); err != nil {
			return ast.CPremise{}, nil, "", err
		}
		ca, err := compileGroundAtom(a, syms)
		if err != nil {
			return ast.CPremise{}, nil, "", err
		}
		adds = append(adds, ca)
		surface = append(surface, a)
	}
	pr, err := parser.ParsePremise(query)
	if err != nil {
		return ast.CPremise{}, nil, "", err
	}
	cpr, names, err := compilePremiseChecked(pr, syms, domSet)
	if err != nil {
		return ast.CPremise{}, nil, "", err
	}
	if len(names) > 0 {
		return ast.CPremise{}, nil, "", fmt.Errorf("hypo: AskUnder needs a ground query")
	}
	return cpr, adds, askUnderCacheKey(pr, surface), nil
}

// Explain returns a rendered derivation tree for a provable ground query
// (plain atoms only), or "" when the query does not hold. Only the
// uniform engine supports explanations.
func (e *Engine) Explain(query string) (string, error) {
	if e.uni == nil {
		return "", fmt.Errorf("hypo: Explain requires ModeUniform")
	}
	pr, names, err := compileQueryChecked(query, e.prog.syms, e.domSet)
	if err != nil {
		return "", err
	}
	if len(names) > 0 {
		return "", fmt.Errorf("hypo: Explain needs a ground query")
	}
	st := e.uni.EmptyState()
	switch pr.Kind {
	case ast.Plain:
		// proceed below
	case ast.Hyp:
		for _, a := range pr.Adds {
			st = st.Add(e.uni.Interner().InternGround(a))
		}
		for _, a := range pr.Dels {
			st = st.Del(e.uni.Interner().InternGround(a))
		}
	default:
		return "", fmt.Errorf("hypo: Explain supports plain and hypothetical queries")
	}
	proof, err := e.uni.Explain(e.uni.Interner().InternGround(pr.Atom), st)
	if err != nil {
		return "", err
	}
	if proof == nil {
		return "", nil
	}
	return proof.String(), nil
}

// Stats reports evaluation counters: the uniform engine's in uniform
// mode, or the sum over the cascade's PROVE_Σ engines in cascade mode.
func (e *Engine) Stats() topdown.Stats {
	if e.uni != nil {
		return e.uni.Stats()
	}
	var sum topdown.Stats
	for i := 1; i <= e.cas.NumStrata(); i++ {
		s := e.cas.SigmaStats(i)
		sum.Goals += s.Goals
		sum.TableHits += s.TableHits
		sum.LoopCuts += s.LoopCuts
		sum.Enumerated += s.Enumerated
		sum.NegCalls += s.NegCalls
		sum.TableSize += s.TableSize
		if s.MaxDepth > sum.MaxDepth {
			sum.MaxDepth = s.MaxDepth
		}
	}
	// Every cascade component shares one tracker, so the growth is read
	// once, not summed per stratum.
	sum.MemBytes = e.mem.Grown()
	return sum
}

// compileQueryChecked parses a query premise, domain-validates it, and
// only then compiles (interns) it. Validation happens on the surface form
// via read-only symbol lookups, so a rejected query never grows the
// shared symbol table — a stream of bad queries against one Program
// cannot leak interned garbage into every engine sharing it.
func compileQueryChecked(query string, syms *symbols.Table, domSet map[symbols.Const]bool) (ast.CPremise, []string, error) {
	pr, err := parser.ParsePremise(query)
	if err != nil {
		return ast.CPremise{}, nil, err
	}
	return compilePremiseChecked(pr, syms, domSet)
}

// compilePremiseChecked is the compile half of compileQueryChecked for
// callers that parse the premise themselves (the cached read paths keep
// the parsed form to canonicalise their cache keys).
func compilePremiseChecked(pr ast.Premise, syms *symbols.Table, domSet map[symbols.Const]bool) (ast.CPremise, []string, error) {
	if err := checkQueryDomain(pr, syms, domSet); err != nil {
		return ast.CPremise{}, nil, err
	}
	vars := map[string]int{}
	var names []string
	cpr, err := ast.CompilePremise(pr, syms, vars, &names)
	if err != nil {
		return ast.CPremise{}, nil, err
	}
	return cpr, names, nil
}

// compilePremiseLoose is compilePremiseChecked without the domain check —
// Query answers over dom(R, DB) bindings anyway, so an out-of-domain
// constant merely yields zero rows rather than a wrong answer.
func compilePremiseLoose(pr ast.Premise, syms *symbols.Table) (ast.CPremise, []string, error) {
	vars := map[string]int{}
	var names []string
	cpr, err := ast.CompilePremise(pr, syms, vars, &names)
	if err != nil {
		return ast.CPremise{}, nil, err
	}
	return cpr, names, nil
}

// checkQueryDomain rejects queries mentioning constants outside
// dom(R, DB): variable enumeration and negation-as-failure range over the
// engine's fixed domain, so a fresh constant would silently be excluded
// from them and could produce wrong answers. Declare such constants up
// front with Options.ExtraDomain.
func checkQueryDomain(pr ast.Premise, syms *symbols.Table, domSet map[symbols.Const]bool) error {
	if err := checkAtomDomain(pr.Atom, syms, domSet); err != nil {
		return err
	}
	for _, a := range pr.Adds {
		if err := checkAtomDomain(a, syms, domSet); err != nil {
			return err
		}
	}
	for _, a := range pr.Dels {
		if err := checkAtomDomain(a, syms, domSet); err != nil {
			return err
		}
	}
	return nil
}

func checkAtomDomain(a ast.Atom, syms *symbols.Table, domSet map[symbols.Const]bool) error {
	for _, t := range a.Args {
		if t.IsVar {
			continue
		}
		if c, ok := syms.LookupConst(t.Name); !ok || !domSet[c] {
			return fmt.Errorf("hypo: query constant %q is outside dom(R, DB); list it in Options.ExtraDomain", t.Name)
		}
	}
	return nil
}

// track opens a metrics window for one top-level query; the returned
// func closes it, recording outcome, latency and the engine's stats
// delta. Hot evaluation loops never touch the metrics package — all
// accounting happens here, once per query.
func (e *Engine) track() func(error) {
	fin := poolTrack(e.mets)
	e.beginMem()
	before := e.Stats()
	return func(err error) {
		e.noteWork(before)
		fin(err)
	}
}

// poolTrack is the engine-independent half of track: Pool uses it
// directly because it leases an engine only after compilation succeeds.
func poolTrack(m *metrics.Set) func(error) {
	m.QueriesStarted.Inc()
	start := time.Now()
	return func(err error) { recordOutcome(m, start, err) }
}

// noteWork adds the engine's evaluation-stats growth since before to the
// engine's metric set.
func (e *Engine) noteWork(before topdown.Stats) {
	after := e.Stats()
	e.mets.GoalExpansions.Add(after.Goals - before.Goals)
	e.mets.TableHits.Add(after.TableHits - before.TableHits)
}

// recordOutcome classifies one finished query for the metrics layer;
// queries_started always equals succeeded + failed + canceled.
func recordOutcome(m *metrics.Set, start time.Time, err error) {
	m.QueryLatency.Observe(time.Since(start).Seconds())
	switch {
	case err == nil:
		m.QueriesSucceeded.Inc()
	case errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline):
		m.QueriesCanceled.Inc()
	default:
		if errors.Is(err, ErrMemory) {
			m.MemQueryAborts.Inc()
		}
		m.QueriesFailed.Inc()
	}
}

// enrich fills an AbortError's empty stats snapshot with the engine's
// summed counters: aborts raised inside a Δ prover or the solution
// enumerator carry no top-down stats of their own. A memory abort from a
// Δ prover carries only its MemBytes reading; the goal counters are
// filled in the same way.
func (e *Engine) enrich(err error) error {
	var ae *AbortError
	if errors.As(err, &ae) {
		rest := ae.Stats
		rest.MemBytes = 0
		if rest == (topdown.Stats{}) {
			mem := ae.Stats.MemBytes
			ae.Stats = e.Stats()
			if mem != 0 {
				ae.Stats.MemBytes = mem
			}
		}
	}
	return err
}

func compileGroundAtom(a ast.Atom, syms *symbols.Table) (ast.CAtom, error) {
	vars := map[string]int{}
	var names []string
	pr, err := ast.CompilePremise(ast.PlainP(a), syms, vars, &names)
	if err != nil {
		return ast.CAtom{}, err
	}
	if len(names) > 0 {
		return ast.CAtom{}, fmt.Errorf("hypo: atom %s is not ground", a)
	}
	return pr.Atom, nil
}
