package hypo

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestShippedPrograms loads every .hdl file under examples/programs and
// checks its embedded queries against expected answers.
func TestShippedPrograms(t *testing.T) {
	expect := map[string]map[string]bool{
		"university.hdl": {
			"grad(mary)[add: take(mary, eng201)]": true,
		},
		"parity.hdl": {
			"even": true,
			"odd":  false,
		},
		"hamiltonian.hdl": {
			"yes": true,
			"no":  false,
		},
		"example9.hdl": {
			"a2": true,
		},
		"tokengame.hdl": {
			"goal":                    true,
			"goal[del: move(v2, v3)]": false,
		},
		"nationality.hdl": {
			"eligible(henry)":  true,
			"eligible(ada)":    true,
			"eligible(george)": false,
			// The counterfactual also works one level up: were Henry not
			// alive, Ada would still be eligible through the nested
			// hypothetical.
			"eligible(ada)[del: alive(henry)]": true,
			// But without her father link, she is not.
			"eligible(ada)[del: father(ada, henry)]": false,
		},
	}
	files, err := filepath.Glob("examples/programs/*.hdl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("only %d shipped programs found", len(files))
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			prog, err := ParseFile(f)
			if err != nil {
				t.Fatalf("ParseFile: %v", err)
			}
			eng, err := New(prog, Options{})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			// Every embedded query must evaluate without error.
			for _, q := range prog.Queries() {
				if _, err := eng.Query(q); err != nil {
					t.Errorf("query %q: %v", q, err)
				}
			}
			for q, want := range expect[filepath.Base(f)] {
				got, err := eng.Ask(q)
				if err != nil {
					t.Fatalf("Ask(%q): %v", q, err)
				}
				if got != want {
					t.Errorf("Ask(%q) = %v, want %v", q, got, want)
				}
			}
		})
	}
}

// TestExplainPublicAPI checks the derivation-tree rendering end to end.
func TestExplainPublicAPI(t *testing.T) {
	prog, err := ParseFile("examples/programs/parity.hdl")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(prog, Options{Mode: ModeUniform})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := eng.Explain("even")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[rule", "[fact]", "under add: copied(", "no instance provable"} {
		if !strings.Contains(tree, want) {
			t.Errorf("missing %q in explanation:\n%s", want, tree)
		}
	}
	// Unprovable: empty explanation, no error.
	tree, err = eng.Explain("odd")
	if err != nil {
		t.Fatal(err)
	}
	if tree != "" {
		t.Errorf("explanation of unprovable goal: %s", tree)
	}
	// Cascade mode refuses.
	eng2, err := New(prog, Options{Mode: ModeCascade})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Explain("even"); err == nil {
		t.Error("cascade Explain should fail")
	}
	// Hypothetical query explanation.
	uniProg, err := ParseFile("examples/programs/university.hdl")
	if err != nil {
		t.Fatal(err)
	}
	eng3, err := New(uniProg, Options{Mode: ModeUniform})
	if err != nil {
		t.Fatal(err)
	}
	tree, err = eng3.Explain("grad(mary)[add: take(mary, eng201)]")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree, "take(mary, eng201)  [fact]") {
		t.Errorf("hypothetical explanation wrong:\n%s", tree)
	}
}
