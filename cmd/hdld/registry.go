package main

import (
	"log/slog"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/server"
	"hypodatalog/internal/tenant"
)

// registryServeConfig carries the serving flags into -programs-dir
// mode; the single-program-only flags (wal, snapshot, role, ...) are
// rejected before this point.
type registryServeConfig struct {
	addr           string
	queue          int
	timeout        time.Duration
	maxTimeout     time.Duration
	maxBody        int64
	drain          time.Duration
	snapshotEvery  int
	minVersionWait time.Duration
	memQuota       int64
	diskQuota      int64
}

// runRegistry is -programs-dir mode: recover every program under dir,
// seed the default program from the CLI rulebase if it is not on disk
// yet, and serve the multi-tenant API. The startup scan completes
// before the listener opens, so the first request already sees every
// tenant.
func runRegistry(logger *slog.Logger, dir, defaultName string, prog *hypo.Program, src string, opts hypo.Options, sc registryServeConfig) int {
	reg, err := tenant.Open(tenant.Config{
		Dir:         dir,
		DefaultName: defaultName,
		Options:     opts,
		LiveConfig:  hypo.LiveConfig{SnapshotEvery: sc.snapshotEvery},
		MaxQueue:    sc.queue,
		MemoryQuota: sc.memQuota,
		DiskQuota:   sc.diskQuota,
		Logger:      logger,
	})
	if err != nil {
		logger.Error("open program registry", "err", err)
		return 1
	}
	// Close compacts every tenant (snapshot paths are always configured
	// in registry mode) so a clean restart replays nothing.
	defer reg.Close()

	def := reg.Default()
	switch {
	case def == nil && prog == nil:
		logger.Error("no default program on disk and none given on the command line",
			"dir", dir, "default", defaultName)
		return 2
	case def == nil:
		if _, _, err := reg.Create(defaultName, src); err != nil {
			logger.Error("create default program", "err", err)
			return 1
		}
		def = reg.Default()
		logger.Info("default program created", "program", defaultName)
	case prog != nil && def.RulesHash() != prog.RulesHash():
		// The on-disk rulebase owns the WAL's identity; a differing CLI
		// program is almost certainly a stale start script.
		logger.Warn("command-line program differs from the on-disk default; serving the on-disk rules",
			"program", defaultName)
	}

	srv, err := server.New(server.Config{
		Registry:       reg,
		Demand:         opts.DemandDriven,
		DefaultTimeout: sc.timeout,
		MaxTimeout:     sc.maxTimeout,
		MaxBodyBytes:   sc.maxBody,
		Logger:         logger,
		MinVersionWait: sc.minVersionWait,
	})
	if err != nil {
		logger.Error("build server", "err", err)
		return 1
	}
	return serveLoop(logger, sc.addr, sc.drain, srv,
		"programs", len(reg.List()),
		"default", defaultName,
		"pool", def.Pool().Size(),
	)
}
