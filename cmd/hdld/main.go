// Command hdld is the hypothetical-Datalog query daemon: it loads one
// program and serves queries against it over HTTP/JSON (see
// internal/server for the API and curl examples in the README).
//
// Usage:
//
//	hdld [flags] program.hdl [more.hdl ...]
//
// Flags:
//
//	-addr a         listen address (default :8080; use 127.0.0.1:0 for an ephemeral port)
//	-mode m         auto | uniform | cascade (default auto)
//	-pool n         engine pool size = max concurrent evaluations (0 = GOMAXPROCS)
//	-queue n        admission queue beyond the pool (0 = 4 × pool)
//	-max n          per-query goal budget (0 = unlimited)
//	-max-memory n   per-query memory budget in bytes: a query whose memo
//	                tables, interner and hypothesis growth exceed it
//	                aborts with 422 kind "memory" (0 = unlimited)
//	-tenant-memory-quota n  per-program memory ceiling in bytes: past it,
//	                idle engines are trimmed, then requests shed with
//	                503 "over_memory" (0 = unlimited)
//	-tenant-disk-quota n  per-program WAL+snapshot ceiling in bytes:
//	                past it, writes answer 503 "over_disk" while reads
//	                keep serving (0 = unlimited)
//	-cache-bytes n  versioned answer cache budget in bytes (0 = disabled);
//	                repeated identical queries at one data version are
//	                served from memory and concurrent identical misses
//	                coalesce onto one evaluation (X-Hdl-Cache: hit|miss|coalesced)
//	-demand         demand-driven (magic-set) evaluation: ground asks run
//	                against a query-specific magic transform of the
//	                program, computing only the cone of facts the bound
//	                arguments demand (watch magic_* under /debug/vars)
//	-timeout d      default per-request evaluation deadline (default 10s)
//	-max-timeout d  clamp on request-supplied timeouts (default 60s)
//	-max-body n     request body cap in bytes (default 1 MiB)
//	-drain d        grace period for in-flight queries on SIGTERM/SIGINT
//	                before their contexts are canceled (default 10s)
//	-log f          access-log format: json | text (default json)
//	-wal FILE       enable the live EDB: mutations from POST /v1/facts are
//	                WAL-logged here and replayed on restart
//	-snapshot FILE  compact the fact set into this HDLSNAP file (loaded in
//	                preference to the program's facts on startup)
//	-snapshot-every n  compact after n commits (default 1024; 0 = only on
//	                clean shutdown)
//	-role r         replication role: primary | replica (default standalone)
//	-primary URL    the primary's base URL (required with -role replica;
//	                writes landing on the replica proxy there)
//	-replicate-addr a  serve the replication endpoints on a separate
//	                listener instead of -addr (primary only)
//	-min-version-wait d  longest a read carrying X-Hdl-Min-Version waits
//	                for replication before 503 "stale" (default 2s)
//	-programs-dir DIR  serve many programs from one daemon: each tenant
//	                lives in DIR/<name>/ (program.hdl + wal.log +
//	                snapshot.hdlsnap), every tenant found on disk is
//	                recovered before the listener opens, and the admin
//	                API (PUT|GET|DELETE /v1/programs/{name}) manages
//	                them at runtime. Incompatible with -wal, -snapshot
//	                and -role (replication is single-program).
//	-default-program NAME  the tenant the un-prefixed /v1/* routes alias
//	                (default "default"; only meaningful with -programs-dir)
//
// With -role primary the daemon streams its WAL to followers
// (GET /v1/repl/snapshot + /v1/repl/stream); with -role replica it tails
// the primary at -primary, applies each commit to its own durable store,
// serves reads at the applied version, and proxies POST /v1/facts to the
// primary. Clients get read-your-writes on any node by echoing a write's
// committed version in the X-Hdl-Min-Version header of later reads. See
// README, "Scaling reads with replicas".
//
// With -programs-dir the positional program.hdl arguments seed the
// default program on first boot; on later boots the on-disk rulebase
// wins (it owns the WAL's identity) and a differing CLI program only
// logs a warning. Each tenant gets its own pool, answer cache,
// admission quota and expvar metric prefix, so one hot program cannot
// shed or slow another. See README, "Serving many programs".
//
// Without -wal the base database is frozen at startup and /v1/facts
// answers 501. With it, the daemon recovers snapshot + WAL tail before
// listening, so an acknowledged commit survives kill -9.
//
// If the disk under the WAL fails at runtime (a failed fsync or rename),
// the daemon degrades instead of dying: queries keep serving the last
// committed version, POST /v1/facts answers 503 with error kind
// "read_only", /healthz stays 200 but reports status "degraded" (reason
// "read_only"), and the live_readonly expvar gauge goes to 1. A
// transient cause (ENOSPC/EDQUOT with a clean rollback) starts a
// background recovery prober that re-enables writes once a probe write
// fsyncs cleanly — healthz shows "recovering": true meanwhile. Any other
// cause is sticky: restart the daemon once the disk is healthy and it
// recovers from the snapshot + WAL tail. See README, "What happens when
// the disk fails".
//
// On SIGTERM or SIGINT the daemon stops accepting connections, fails
// /readyz, lets in-flight queries finish for the drain grace period,
// then cancels their contexts and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	hypo "hypodatalog"
	"hypodatalog/internal/repl"
	"hypodatalog/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	mode := flag.String("mode", "auto", "evaluation mode: auto | uniform | cascade")
	pool := flag.Int("pool", 0, "engine pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue length (0 = 4 × pool)")
	maxGoals := flag.Int64("max", 0, "goal budget per query (0 = unlimited)")
	maxMemory := flag.Int64("max-memory", 0, "memory budget per query in bytes (0 = unlimited)")
	tenantMemQuota := flag.Int64("tenant-memory-quota", 0, "per-program memory ceiling in bytes (0 = unlimited)")
	tenantDiskQuota := flag.Int64("tenant-disk-quota", 0, "per-program WAL+snapshot ceiling in bytes (0 = unlimited)")
	cacheBytes := flag.Int64("cache-bytes", 0, "answer cache byte budget (0 = disabled)")
	demand := flag.Bool("demand", false, "demand-driven (magic-set) evaluation for bound queries")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request evaluation deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "clamp on request-supplied timeouts")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	drain := flag.Duration("drain", 10*time.Second, "shutdown grace for in-flight queries")
	logFormat := flag.String("log", "json", "log format: json | text")
	wal := flag.String("wal", "", "WAL file enabling runtime fact mutation (empty = read-only EDB)")
	snapshot := flag.String("snapshot", "", "HDLSNAP compaction target (and preferred fact source on startup)")
	snapshotEvery := flag.Int("snapshot-every", 1024, "compact after this many commits (0 = only on clean shutdown)")
	role := flag.String("role", "", "replication role: primary | replica (empty = standalone)")
	primaryURL := flag.String("primary", "", "primary's base URL (required with -role replica; writes proxy there)")
	replicateAddr := flag.String("replicate-addr", "", "extra listener serving only the replication endpoints (primary; empty = share -addr)")
	minVersionWait := flag.Duration("min-version-wait", 2*time.Second, "max wait for X-Hdl-Min-Version before 503 stale")
	programsDir := flag.String("programs-dir", "", "multi-tenant state directory (one program per subdirectory; empty = single program)")
	defaultProgram := flag.String("default-program", "default", "program the un-prefixed /v1/* routes alias (with -programs-dir)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "hdld: unknown -log format %q\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	if flag.NArg() == 0 && *programsDir == "" {
		fmt.Fprintln(os.Stderr, "usage: hdld [flags] program.hdl ...")
		flag.PrintDefaults()
		return 2
	}
	var src strings.Builder
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			logger.Error("read program", "err", err)
			return 1
		}
		src.Write(data)
		src.WriteByte('\n')
	}
	var prog *hypo.Program
	var err error
	if flag.NArg() > 0 {
		prog, err = hypo.Parse(src.String())
		if err != nil {
			logger.Error("parse program", "err", err)
			return 1
		}
	}
	opts := hypo.Options{MaxGoals: *maxGoals, MaxMemoryBytes: *maxMemory, PoolSize: *pool, CacheBytes: *cacheBytes, DemandDriven: *demand}
	switch *mode {
	case "auto":
		opts.Mode = hypo.ModeAuto
	case "uniform":
		opts.Mode = hypo.ModeUniform
	case "cascade":
		opts.Mode = hypo.ModeCascade
	default:
		logger.Error("unknown mode", "mode", *mode)
		return 2
	}
	switch *role {
	case "", "primary", "replica":
	default:
		logger.Error("unknown role", "role", *role)
		return 2
	}
	if *programsDir != "" {
		if *role != "" {
			logger.Error("-programs-dir is incompatible with -role: replication is single-program")
			return 2
		}
		if *wal != "" || *snapshot != "" {
			logger.Error("-programs-dir owns the per-tenant WAL/snapshot layout; drop -wal and -snapshot")
			return 2
		}
		return runRegistry(logger, *programsDir, *defaultProgram, prog, src.String(), opts, registryServeConfig{
			addr:           *addr,
			queue:          *queue,
			timeout:        *timeout,
			maxTimeout:     *maxTimeout,
			maxBody:        *maxBody,
			drain:          *drain,
			snapshotEvery:  *snapshotEvery,
			minVersionWait: *minVersionWait,
			memQuota:       *tenantMemQuota,
			diskQuota:      *tenantDiskQuota,
		})
	}
	if *role == "replica" && (*wal == "" || *primaryURL == "") {
		logger.Error("-role replica requires both -wal (local durable store) and -primary (who to tail)")
		return 2
	}
	if *role == "primary" && *wal == "" {
		logger.Error("-role primary requires -wal (followers tail the WAL)")
		return 2
	}

	var pl *hypo.Pool
	var lv *hypo.Live
	if *wal != "" {
		lv, err = hypo.OpenLive(prog, hypo.LiveConfig{
			WALPath:       *wal,
			SnapshotPath:  *snapshot,
			SnapshotEvery: *snapshotEvery,
			Logger:        logger,
		}, opts)
		if err != nil {
			logger.Error("open live store", "err", err)
			return 1
		}
		// Close compacts (when -snapshot is set) so a clean restart
		// replays nothing.
		defer lv.Close()
		rec := lv.Recovery()
		logger.Info("live EDB recovered",
			"wal", *wal,
			"version", rec.Version,
			"replayed", rec.Replayed,
			"torn_bytes", rec.TornBytes,
			"from_snapshot", rec.FromSnapshot,
		)
		pl = lv.Pool()
	} else {
		if *snapshot != "" {
			logger.Warn("-snapshot has no effect without -wal; serving the program's facts read-only")
		}
		pl, err = hypo.NewPool(prog, opts)
		if err != nil {
			logger.Error("build pool", "err", err)
			return 1
		}
		defer pl.Close()
	}

	// Any node with a live store can be tailed — a standalone or replica
	// node serving the endpoints costs nothing until a follower connects,
	// and makes promotion (point followers at a former replica) a pure
	// config change.
	var rp *repl.Primary
	if lv != nil {
		rp = repl.NewPrimary(repl.PrimaryConfig{
			Source:    lv.Store(),
			RulesHash: prog.RulesHash(),
			Logger:    logger,
		})
	}

	var replicaStatus func() repl.Status
	if *role == "replica" {
		rep, err := repl.Start(repl.ReplicaConfig{
			Primary:   *primaryURL,
			Target:    lv,
			RulesHash: prog.RulesHash(),
			Logger:    logger,
		})
		if err != nil {
			logger.Error("start replication", "err", err)
			return 1
		}
		defer rep.Close()
		replicaStatus = rep.Status
	}

	mountPrimary := rp
	if *replicateAddr != "" {
		// Replication gets its own listener (own port, own firewall rules);
		// the query listener then does not serve the repl endpoints.
		mountPrimary = nil
	}

	srv, err := server.New(server.Config{
		Pool:           pl,
		Live:           lv,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
		Logger:         logger,
		Role:           *role,
		Demand:         *demand,
		ReplPrimary:    mountPrimary,
		ReplicaStatus:  replicaStatus,
		PrimaryURL:     *primaryURL,
		MinVersionWait: *minVersionWait,
		MemoryQuota:    *tenantMemQuota,
		DiskQuota:      *tenantDiskQuota,
	})
	if err != nil {
		logger.Error("build server", "err", err)
		return 1
	}

	if *replicateAddr != "" {
		if rp == nil {
			logger.Error("-replicate-addr requires -wal (there is no WAL to ship)")
			return 2
		}
		rmux := http.NewServeMux()
		rp.Mount(rmux)
		rln, err := net.Listen("tcp", *replicateAddr)
		if err != nil {
			logger.Error("listen (replication)", "err", err)
			return 1
		}
		rs := &http.Server{Handler: rmux, ReadHeaderTimeout: 10 * time.Second}
		defer rs.Close()
		go func() {
			if err := rs.Serve(rln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("serve (replication)", "err", err)
			}
		}()
		logger.Info("replication listener", "addr", rln.Addr().String())
	}

	st := prog.Stratification()
	return serveLoop(logger, *addr, *drain, srv,
		"pool", pl.Size(),
		"linear", st.Linear,
		"strata", st.Strata,
		"demand", *demand,
	)
}

// serveLoop runs the HTTP listener until SIGTERM/SIGINT, then executes
// the two-phase drain: BeginDrain (readyz fails, new requests 503),
// wait out the grace period, then cancel the BaseContext so queries
// still evaluating abort with ErrCanceled. Shared by the single-program
// and -programs-dir modes.
func serveLoop(logger *slog.Logger, addr string, drainGrace time.Duration, srv *server.Server, listenAttrs ...any) int {
	// root is the BaseContext of every request: canceling it after the
	// drain grace period force-aborts queries still evaluating.
	root, cancelRoot := context.WithCancel(context.Background())
	defer cancelRoot()
	hs := &http.Server{
		Handler:           srv.Handler(),
		BaseContext:       func(net.Listener) context.Context { return root },
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Error("listen", "err", err)
		return 1
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	logger.Info("listening", append([]any{"addr", ln.Addr().String()}, listenAttrs...)...)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Error("serve", "err", err)
		return 1
	case got := <-sig:
		logger.Info("draining", "signal", got.String(), "grace", drainGrace.String())
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), drainGrace)
		err := hs.Shutdown(ctx)
		cancel()
		if err != nil {
			// Grace expired with queries still in flight: cancel their
			// contexts so they abort with ErrCanceled, then close.
			logger.Warn("drain grace expired; canceling in-flight queries", "err", err)
			cancelRoot()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
				logger.Error("forced shutdown", "err", err)
			}
			cancel()
			_ = hs.Close()
		}
		logger.Info("exiting")
		return 0
	}
}
