package cmd_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func httpJSON(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// TestHdldProgramsDirSurvivesKill is the multi-tenant durability e2e:
// start hdld with -programs-dir, create a second program at runtime,
// commit acknowledged writes to both tenants, kill -9 mid-flight,
// restart over the same directory, and check each program recovered its
// own WAL independently — versions and query answers per tenant.
func TestHdldProgramsDirSurvivesKill(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "programs")
	cmd, addr, logs, _ := startHdld(t,
		"-programs-dir", dir, "examples/programs/university.hdl")
	defer cmd.Process.Kill()
	base := "http://" + addr

	// Create a second program at runtime.
	code, body := httpJSON(t, http.MethodPut, base+"/v1/programs/parity",
		`{"program": "even.\nodd :- not even.\nflag(none).\ncandidate(v0). candidate(v1). candidate(v2). candidate(v3). candidate(v4).\n"}`)
	if code != 201 {
		t.Fatalf("create parity: %d %s; logs:\n%s", code, body, logs.String())
	}

	// Acknowledged commits to both tenants, interleaved.
	var uniV, parV uint64
	for i := 0; i < 5; i++ {
		code, body = httpJSON(t, http.MethodPost, base+"/v1/programs/default/facts",
			`{"assert": ["take(mary, eng201)"]}`)
		if code != 200 {
			t.Fatalf("uni commit %d: %d %s", i, code, body)
		}
		var fr struct {
			Version uint64 `json:"version"`
		}
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		uniV = fr.Version
		code, body = httpJSON(t, http.MethodPost, base+"/v1/programs/parity/facts",
			fmt.Sprintf(`{"assert": ["flag(v%d)"]}`, i))
		if code != 200 {
			t.Fatalf("parity commit %d: %d %s", i, code, body)
		}
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		parV = fr.Version
	}

	// kill -9: no drain, no compaction, no deferred Close.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart over the same directory; the boot scan must recover both
	// tenants before the listener opens.
	cmd2, addr2, logs2, scanDone2 := startHdld(t,
		"-programs-dir", dir, "examples/programs/university.hdl")
	defer cmd2.Process.Kill()
	base2 := "http://" + addr2

	code, body = httpJSON(t, http.MethodGet, base2+"/healthz", "")
	if code != 200 {
		t.Fatalf("healthz after restart: %d %s; logs:\n%s", code, body, logs2.String())
	}
	var hz struct {
		Programs map[string]struct {
			DataVersion uint64 `json:"dataVersion"`
		} `json:"programs"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz body %s: %v", body, err)
	}
	if got := hz.Programs["default"].DataVersion; got < uniV {
		t.Errorf("recovered default version %d < acked %d; logs:\n%s", got, uniV, logs2.String())
	}
	if got := hz.Programs["parity"].DataVersion; got < parV {
		t.Errorf("recovered parity version %d < acked %d; logs:\n%s", got, parV, logs2.String())
	}

	// Each tenant answers from its own recovered WAL.
	code, body = httpJSON(t, http.MethodPost, base2+"/v1/programs/default/ask",
		`{"query": "grad(mary)"}`)
	if code != 200 || !strings.Contains(string(body), `"result":true`) {
		t.Errorf("recovered default ask: %d %s", code, body)
	}
	code, body = httpJSON(t, http.MethodPost, base2+"/v1/programs/parity/ask",
		`{"query": "flag(v4)"}`)
	if code != 200 || !strings.Contains(string(body), `"result":true`) {
		t.Errorf("recovered parity ask: %d %s", code, body)
	}
	// No cross-tenant bleed: parity never saw uni's facts.
	code, body = httpJSON(t, http.MethodPost, base2+"/v1/programs/parity/query",
		`{"query": "flag(X)"}`)
	if strings.Contains(string(body), "mary") {
		t.Errorf("cross-tenant bleed in parity: %s", body)
	}

	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-scanDone2:
	case <-time.After(15 * time.Second):
		t.Fatalf("hdld did not exit within 15s; logs:\n%s", logs2.String())
	}
	if err := cmd2.Wait(); err != nil {
		t.Errorf("hdld exit after SIGTERM = %v; logs:\n%s", err, logs2.String())
	}
}
