// Command hdlbench runs the experiment suite (E1-E12 of DESIGN.md) and
// prints one result table per experiment — the rows recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	hdlbench [-run E1,E7] [-smoke]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hypodatalog/internal/bench"
)

func main() {
	runList := flag.String("run", "", "comma-separated experiment ids (default: all)")
	smoke := flag.Bool("smoke", false, "use tiny sweep sizes")
	flag.Parse()

	sizes := bench.DefaultSizes()
	if *smoke {
		sizes = bench.SmokeSizes()
	}
	want := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	failed := false
	for _, ex := range bench.All() {
		if len(want) > 0 && !want[ex.ID] {
			continue
		}
		fmt.Printf("# %s — %s\n", ex.ID, ex.Name)
		start := time.Now()
		tbl, err := ex.Run(sizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", ex.ID, err)
			failed = true
			continue
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s total)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
