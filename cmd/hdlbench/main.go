// Command hdlbench runs the experiment suite (E1-E12 of DESIGN.md) and
// prints one result table per experiment — the rows recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	hdlbench [-run E1,E7] [-smoke] [-json results.json]
//
// With -json the results are additionally written to the given file as a
// JSON array of {id, name, elapsed_ms, table} objects — the machine-
// readable baseline format (see BENCH_live.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hypodatalog/internal/bench"
)

// jsonResult is one experiment's entry in the -json output.
type jsonResult struct {
	ID        string       `json:"id"`
	Name      string       `json:"name"`
	ElapsedMS float64      `json:"elapsed_ms"`
	Table     *bench.Table `json:"table"`
}

func main() {
	runList := flag.String("run", "", "comma-separated experiment ids (default: all)")
	smoke := flag.Bool("smoke", false, "use tiny sweep sizes")
	jsonOut := flag.String("json", "", "also write results to this file as JSON")
	flag.Parse()

	sizes := bench.DefaultSizes()
	if *smoke {
		sizes = bench.SmokeSizes()
	}
	want := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	failed := false
	var results []jsonResult
	for _, ex := range bench.All() {
		if len(want) > 0 && !want[ex.ID] {
			continue
		}
		fmt.Printf("# %s — %s\n", ex.ID, ex.Name)
		start := time.Now()
		tbl, err := ex.Run(sizes)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", ex.ID, err)
			failed = true
			continue
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s total)\n\n", elapsed.Round(time.Millisecond))
		results = append(results, jsonResult{
			ID:        ex.ID,
			Name:      ex.Name,
			ElapsedMS: float64(elapsed.Microseconds()) / 1000,
			Table:     tbl,
		})
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdlbench: writing %s: %v\n", *jsonOut, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
