// Command hdlc checks hypothetical Datalog programs: syntax, validation,
// and the linear-stratification analysis of Lemma 1. With -v it prints
// the partition assignment (Δ_i / Σ_i membership per predicate).
//
// Exit status: 0 if the program is linearly stratifiable, 1 if it is
// evaluable but not linearly stratifiable, 2 on hard errors (syntax,
// recursion through negation, ...).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hypodatalog"
)

func main() {
	verbose := flag.Bool("v", false, "print the partition assignment")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hdlc [-v] program.hdl ...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		prog, err := hypo.ParseFile(path)
		if err != nil {
			fmt.Printf("%s: ERROR: %v\n", path, err)
			exit = 2
			continue
		}
		s := prog.Stratification()
		if !s.Linear {
			fmt.Printf("%s: evaluable, but NOT linearly stratifiable: %s\n", path, s.Reason)
			if exit == 0 {
				exit = 1
			}
			continue
		}
		fmt.Printf("%s: linearly stratified with %d strata (data-complexity in Σ_%d^P)\n",
			path, s.Strata, s.Strata)
		if *verbose {
			type entry struct {
				pred string
				part int
			}
			var entries []entry
			for pred, part := range s.Partition {
				entries = append(entries, entry{pred, part})
			}
			sort.Slice(entries, func(i, j int) bool {
				if entries[i].part != entries[j].part {
					return entries[i].part < entries[j].part
				}
				return entries[i].pred < entries[j].pred
			})
			for _, e := range entries {
				stratum := (e.part + 1) / 2
				kind := "Δ"
				if e.part%2 == 0 {
					kind = "Σ"
				}
				fmt.Printf("  %-24s partition %d (%s_%d)\n", e.pred, e.part, kind, stratum)
			}
		}
	}
	os.Exit(exit)
}
