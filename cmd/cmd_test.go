// Package cmd_test builds the command binaries and exercises them end
// to end against the shipped example programs.
package cmd_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	hypo "hypodatalog"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "hdlbin")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"hdl", "hdlc", "hdlbench", "hdld"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./"+tool)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			panic("building " + tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, tool string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	cmd.Dir = ".."
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", tool, args, err)
	}
	return string(out), code
}

func TestHdlRunsPrograms(t *testing.T) {
	out, code := run(t, "hdl", "examples/programs/parity.hdl")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "?- even.") || !strings.Contains(out, "true") {
		t.Errorf("missing query output:\n%s", out)
	}
	if !strings.Contains(out, "linearly stratified, 1 strata") {
		t.Errorf("missing stratification banner:\n%s", out)
	}
}

func TestHdlQueryFlagAndBindings(t *testing.T) {
	out, code := run(t, "hdl", "-q", "grad(S)[add: take(S, C)]", "examples/programs/university.hdl")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "S = mary") {
		t.Errorf("missing binding for mary:\n%s", out)
	}
}

func TestHdlExplain(t *testing.T) {
	out, code := run(t, "hdl", "-explain", "examples/programs/parity.hdl")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "[fact]") || !strings.Contains(out, "under add:") {
		t.Errorf("missing derivation tree:\n%s", out)
	}
}

func TestHdlModes(t *testing.T) {
	for _, mode := range []string{"auto", "uniform", "cascade"} {
		out, code := run(t, "hdl", "-mode", mode, "examples/programs/hamiltonian.hdl")
		if code != 0 {
			t.Fatalf("mode %s: exit %d:\n%s", mode, code, out)
		}
		if !strings.Contains(out, "?- yes.\n   true") {
			t.Errorf("mode %s: wrong answer:\n%s", mode, out)
		}
	}
}

func TestHdlDeletionProgram(t *testing.T) {
	out, code := run(t, "hdl", "examples/programs/tokengame.hdl")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "?- goal.\n   true") {
		t.Errorf("token game wrong:\n%s", out)
	}
}

func TestHdlErrors(t *testing.T) {
	out, code := run(t, "hdl", "no-such-file.hdl")
	if code == 0 {
		t.Errorf("missing-file run succeeded:\n%s", out)
	}
	_, code = run(t, "hdl")
	if code == 0 {
		t.Error("argless run succeeded")
	}
}

func TestHdlcReportsStrata(t *testing.T) {
	out, code := run(t, "hdlc", "-v", "examples/programs/example9.hdl")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"3 strata", "a3/0", "Σ_3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestHdlcNonLinearExitCode(t *testing.T) {
	tmp := filepath.Join(binDir, "nonlinear.hdl")
	if err := os.WriteFile(tmp, []byte("a :- b, a[add: c1], a[add: c2].\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "hdlc", tmp)
	if code != 1 {
		t.Errorf("exit = %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "NOT linearly stratifiable") {
		t.Errorf("missing diagnosis:\n%s", out)
	}
	// Hard errors exit 2.
	tmp2 := filepath.Join(binDir, "negcycle.hdl")
	if err := os.WriteFile(tmp2, []byte("a :- not b.\nb :- not a.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, code = run(t, "hdlc", tmp2)
	if code != 2 {
		t.Errorf("negation cycle exit = %d, want 2", code)
	}
}

func TestHdlbenchSmoke(t *testing.T) {
	out, code := run(t, "hdlbench", "-smoke", "-run", "E1,E11")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "E1 (Example 4)") || !strings.Contains(out, "E11 (section 3.1)") {
		t.Errorf("missing experiment tables:\n%s", out)
	}
}

// TestHdlAbortExitsNonZero: a directive query cut short by the goal
// budget must fail the run (exit 1) and report the partial work on
// stderr, so scripted invocations cannot mistake an abort for a clean
// "false".
func TestHdlAbortExitsNonZero(t *testing.T) {
	tmp := filepath.Join(binDir, "abort.hdl")
	// A derivation chain of 4 goal expansions, so -max 1 aborts it.
	prog := "a4.\na3 :- a4.\na2 :- a3.\na1 :- a2.\n?- a1.\n"
	if err := os.WriteFile(tmp, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "hdl", "-mode", "uniform", "-max", "1", tmp)
	if code != 1 {
		t.Errorf("exit = %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "aborted") || !strings.Contains(out, "partial work") {
		t.Errorf("missing abort diagnostics:\n%s", out)
	}
	// The same program under a workable budget still exits 0.
	out, code = run(t, "hdl", "-mode", "uniform", tmp)
	if code != 0 {
		t.Errorf("unbudgeted exit = %d, want 0:\n%s", code, out)
	}
}

// TestHdldServesAndDrains boots the daemon on an ephemeral port, asks it
// a query over HTTP, then sends SIGTERM and expects a clean drain and
// exit 0.
func TestHdldServesAndDrains(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "hdld"),
		"-addr", "127.0.0.1:0", "-log", "json", "examples/programs/university.hdl")
	cmd.Dir = ".."
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs a "listening" line with the resolved address; scan
	// for it, then keep draining stderr so the child never blocks.
	// scanDone closes at stderr EOF (the child exited and its last log
	// line is in logs) — wait for it before cmd.Wait(), which would
	// close the pipe out from under the scanner and drop tail lines.
	var logs bytes.Buffer
	sc := bufio.NewScanner(io.TeeReader(stderr, &logs))
	addrCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		for sc.Scan() {
			var line struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Msg == "listening" {
				select {
				case addrCh <- line.Addr:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatalf("no listening line within 10s; logs:\n%s", logs.String())
	}

	resp, err := http.Post("http://"+addr+"/v1/ask", "application/json",
		strings.NewReader(`{"query": "grad(tony)"}`))
	if err != nil {
		t.Fatalf("POST /v1/ask: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":true`) {
		t.Errorf("ask = %d %s, want 200 result:true", resp.StatusCode, body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-scanDone:
	case <-time.After(15 * time.Second):
		t.Fatalf("hdld did not exit within 15s of SIGTERM; logs:\n%s", logs.String())
	}
	if err := cmd.Wait(); err != nil {
		t.Errorf("hdld exit after SIGTERM = %v; logs:\n%s", err, logs.String())
	}
	for _, want := range []string{"draining", "exiting"} {
		if !strings.Contains(logs.String(), want) {
			t.Errorf("shutdown logs missing %q:\n%s", want, logs.String())
		}
	}
}

// TestHdlSnapshotOut round-trips a program through `hdl -snapshot-out`:
// the written HDLSNAP file, loaded back with hypo.ReadSnapshot, must
// reproduce the program — same rules, queries and facts — and answer its
// queries identically.
func TestHdlSnapshotOut(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "uni.snap")
	out, code := run(t, "hdl", "-snapshot-out", snap, "examples/programs/university.hdl")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "snapshot written to") {
		t.Errorf("missing confirmation line:\n%s", out)
	}
	// With embedded queries the run still evaluates them after writing.
	if !strings.Contains(out, "S = mary") {
		t.Errorf("embedded queries not evaluated after snapshot:\n%s", out)
	}

	src, err := os.ReadFile("../examples/programs/university.hdl")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := hypo.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := hypo.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	// The snapshot stores facts in per-predicate blocks, so clause order
	// may differ; compare the canonical texts as line sets.
	if got, want := sortedLines(loaded.String()), sortedLines(orig.String()); got != want {
		t.Errorf("round-trip mismatch:\n--- original ---\n%s\n--- snapshot ---\n%s", want, got)
	}
	if got, want := loaded.Queries(), orig.Queries(); len(got) != len(want) {
		t.Errorf("queries: got %v want %v", got, want)
	}
	eng, err := hypo.New(loaded, hypo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := eng.Ask("grad(mary)[add: take(mary, eng201)]")
	if err != nil || !ok {
		t.Errorf("Example 1 on reloaded snapshot = %v, %v; want true", ok, err)
	}
}

func sortedLines(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// startHdld launches the daemon with -log json plus the given extra
// arguments, waits for its "listening" line and returns the resolved
// address. The returned buffer accumulates stderr for diagnostics; the
// returned channel closes at stderr EOF (i.e. child exit) — wait on it
// before cmd.Wait() so no tail log lines are lost.
func startHdld(t *testing.T, extra ...string) (*exec.Cmd, string, *bytes.Buffer, chan struct{}) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-log", "json"}, extra...)
	cmd := exec.Command(filepath.Join(binDir, "hdld"), args...)
	cmd.Dir = ".."
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	logs := &bytes.Buffer{}
	sc := bufio.NewScanner(io.TeeReader(stderr, logs))
	addrCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		for sc.Scan() {
			var line struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Msg == "listening" {
				select {
				case addrCh <- line.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr, logs, scanDone
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("no listening line within 10s; logs:\n%s", logs.String())
		return nil, "", nil, nil
	}
}

// TestHdldWALSurvivesKill streams fact commits at a live daemon, kill
// -9s it mid-stream, restarts it on the same WAL, and checks that the
// recovered data version covers every acknowledged commit — the
// durability contract of POST /v1/facts.
func TestHdldWALSurvivesKill(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "wal.log")
	cmd, addr, logs, _ := startHdld(t, "-wal", wal, "examples/programs/university.hdl")
	defer cmd.Process.Kill()

	// Toggle a base fact; every 200 response is an acknowledged, durable
	// commit. Constants stay inside dom(R, DB) of the seed program.
	var maxAcked uint64
	for i := 0; i < 9; i++ {
		body := `{"assert": ["take(mary, eng201)"]}`
		if i%2 == 1 {
			body = `{"retract": ["take(mary, eng201)"]}`
		}
		resp, err := http.Post("http://"+addr+"/v1/facts", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("commit %d: %v; logs:\n%s", i, err, logs.String())
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("commit %d: status %d body %s", i, resp.StatusCode, data)
		}
		var fr struct {
			Version uint64 `json:"version"`
		}
		if err := json.Unmarshal(data, &fr); err != nil || fr.Version == 0 {
			t.Fatalf("commit %d: bad response %s (err %v)", i, data, err)
		}
		maxAcked = fr.Version
	}

	// kill -9: no drain, no compaction, no deferred Close.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	cmd2, addr2, logs2, scanDone2 := startHdld(t, "-wal", wal, "examples/programs/university.hdl")
	defer cmd2.Process.Kill()
	resp, err := http.Get("http://" + addr2 + "/healthz")
	if err != nil {
		t.Fatalf("healthz after restart: %v; logs:\n%s", err, logs2.String())
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var hz struct {
		DataVersion uint64 `json:"dataVersion"`
	}
	if err := json.Unmarshal(data, &hz); err != nil {
		t.Fatalf("healthz body %s: %v", data, err)
	}
	if hz.DataVersion < maxAcked {
		t.Errorf("recovered dataVersion %d < max acknowledged commit %d; logs:\n%s",
			hz.DataVersion, maxAcked, logs2.String())
	}

	// The recovered state answers queries consistently with the last
	// acknowledged commit (9 commits end on an assert: fact present).
	resp, err = http.Post("http://"+addr2+"/v1/ask", "application/json",
		strings.NewReader(`{"query": "grad(mary)"}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(data), `"result":true`) {
		t.Errorf("post-recovery ask = %d %s, want result:true", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), fmt.Sprintf(`"dataVersion":%d`, maxAcked)) {
		t.Errorf("post-recovery ask %s lacks dataVersion %d", data, maxAcked)
	}

	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-scanDone2:
	case <-time.After(15 * time.Second):
		t.Fatalf("restarted hdld did not exit within 15s; logs:\n%s", logs2.String())
	}
	if err := cmd2.Wait(); err != nil {
		t.Errorf("restarted hdld exit after SIGTERM = %v; logs:\n%s", err, logs2.String())
	}
}
