// Package cmd_test builds the command binaries and exercises them end
// to end against the shipped example programs.
package cmd_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "hdlbin")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"hdl", "hdlc", "hdlbench", "hdld"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./"+tool)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			panic("building " + tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, tool string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	cmd.Dir = ".."
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", tool, args, err)
	}
	return string(out), code
}

func TestHdlRunsPrograms(t *testing.T) {
	out, code := run(t, "hdl", "examples/programs/parity.hdl")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "?- even.") || !strings.Contains(out, "true") {
		t.Errorf("missing query output:\n%s", out)
	}
	if !strings.Contains(out, "linearly stratified, 1 strata") {
		t.Errorf("missing stratification banner:\n%s", out)
	}
}

func TestHdlQueryFlagAndBindings(t *testing.T) {
	out, code := run(t, "hdl", "-q", "grad(S)[add: take(S, C)]", "examples/programs/university.hdl")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "S = mary") {
		t.Errorf("missing binding for mary:\n%s", out)
	}
}

func TestHdlExplain(t *testing.T) {
	out, code := run(t, "hdl", "-explain", "examples/programs/parity.hdl")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "[fact]") || !strings.Contains(out, "under add:") {
		t.Errorf("missing derivation tree:\n%s", out)
	}
}

func TestHdlModes(t *testing.T) {
	for _, mode := range []string{"auto", "uniform", "cascade"} {
		out, code := run(t, "hdl", "-mode", mode, "examples/programs/hamiltonian.hdl")
		if code != 0 {
			t.Fatalf("mode %s: exit %d:\n%s", mode, code, out)
		}
		if !strings.Contains(out, "?- yes.\n   true") {
			t.Errorf("mode %s: wrong answer:\n%s", mode, out)
		}
	}
}

func TestHdlDeletionProgram(t *testing.T) {
	out, code := run(t, "hdl", "examples/programs/tokengame.hdl")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "?- goal.\n   true") {
		t.Errorf("token game wrong:\n%s", out)
	}
}

func TestHdlErrors(t *testing.T) {
	out, code := run(t, "hdl", "no-such-file.hdl")
	if code == 0 {
		t.Errorf("missing-file run succeeded:\n%s", out)
	}
	_, code = run(t, "hdl")
	if code == 0 {
		t.Error("argless run succeeded")
	}
}

func TestHdlcReportsStrata(t *testing.T) {
	out, code := run(t, "hdlc", "-v", "examples/programs/example9.hdl")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"3 strata", "a3/0", "Σ_3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestHdlcNonLinearExitCode(t *testing.T) {
	tmp := filepath.Join(binDir, "nonlinear.hdl")
	if err := os.WriteFile(tmp, []byte("a :- b, a[add: c1], a[add: c2].\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "hdlc", tmp)
	if code != 1 {
		t.Errorf("exit = %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "NOT linearly stratifiable") {
		t.Errorf("missing diagnosis:\n%s", out)
	}
	// Hard errors exit 2.
	tmp2 := filepath.Join(binDir, "negcycle.hdl")
	if err := os.WriteFile(tmp2, []byte("a :- not b.\nb :- not a.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, code = run(t, "hdlc", tmp2)
	if code != 2 {
		t.Errorf("negation cycle exit = %d, want 2", code)
	}
}

func TestHdlbenchSmoke(t *testing.T) {
	out, code := run(t, "hdlbench", "-smoke", "-run", "E1,E11")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "E1 (Example 4)") || !strings.Contains(out, "E11 (section 3.1)") {
		t.Errorf("missing experiment tables:\n%s", out)
	}
}

// TestHdlAbortExitsNonZero: a directive query cut short by the goal
// budget must fail the run (exit 1) and report the partial work on
// stderr, so scripted invocations cannot mistake an abort for a clean
// "false".
func TestHdlAbortExitsNonZero(t *testing.T) {
	tmp := filepath.Join(binDir, "abort.hdl")
	// A derivation chain of 4 goal expansions, so -max 1 aborts it.
	prog := "a4.\na3 :- a4.\na2 :- a3.\na1 :- a2.\n?- a1.\n"
	if err := os.WriteFile(tmp, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "hdl", "-mode", "uniform", "-max", "1", tmp)
	if code != 1 {
		t.Errorf("exit = %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "aborted") || !strings.Contains(out, "partial work") {
		t.Errorf("missing abort diagnostics:\n%s", out)
	}
	// The same program under a workable budget still exits 0.
	out, code = run(t, "hdl", "-mode", "uniform", tmp)
	if code != 0 {
		t.Errorf("unbudgeted exit = %d, want 0:\n%s", code, out)
	}
}

// TestHdldServesAndDrains boots the daemon on an ephemeral port, asks it
// a query over HTTP, then sends SIGTERM and expects a clean drain and
// exit 0.
func TestHdldServesAndDrains(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "hdld"),
		"-addr", "127.0.0.1:0", "-log", "json", "examples/programs/university.hdl")
	cmd.Dir = ".."
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs a "listening" line with the resolved address; scan
	// for it, then keep draining stderr so the child never blocks.
	var logs bytes.Buffer
	sc := bufio.NewScanner(io.TeeReader(stderr, &logs))
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			var line struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Msg == "listening" {
				select {
				case addrCh <- line.Addr:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatalf("no listening line within 10s; logs:\n%s", logs.String())
	}

	resp, err := http.Post("http://"+addr+"/v1/ask", "application/json",
		strings.NewReader(`{"query": "grad(tony)"}`))
	if err != nil {
		t.Fatalf("POST /v1/ask: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"result":true`) {
		t.Errorf("ask = %d %s, want 200 result:true", resp.StatusCode, body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("hdld exit after SIGTERM = %v; logs:\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("hdld did not exit within 15s of SIGTERM; logs:\n%s", logs.String())
	}
	for _, want := range []string{"draining", "exiting"} {
		if !strings.Contains(logs.String(), want) {
			t.Errorf("shutdown logs missing %q:\n%s", want, logs.String())
		}
	}
}
