// Command hdl evaluates hypothetical Datalog programs.
//
// Usage:
//
//	hdl [flags] program.hdl [more.hdl ...]
//
// The embedded "?- query." clauses of the programs are evaluated and
// printed. Additional queries can be given with -q, and -i drops into an
// interactive prompt afterwards. Queries may contain variables; all
// bindings over dom(R, DB) are printed.
//
// Flags:
//
//	-q query     evaluate this query (repeatable)
//	-i           interactive prompt after file queries
//	-mode m      auto | uniform | cascade (default auto)
//	-stats       print per-query statistics and a final metrics dump
//	-max n       abort a query after n goal expansions (0 = unlimited)
//	-deadline d  abort each query after duration d, e.g. 500ms (0 = none)
//	-snapshot-out FILE  compact the loaded program+facts into a HDLSNAP
//	             snapshot (e.g. to seed hdld -snapshot) and exit, unless
//	             queries or -i ask for evaluation too
//
// Exit status is 0 on a clean run, 1 if any file or -q query aborted
// (deadline, cancellation or goal budget — partial work is reported on
// stderr) or on a usage/parse error.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hypodatalog"
	"hypodatalog/internal/metrics"
)

type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }

func (q *queryList) Set(s string) error {
	*q = append(*q, s)
	return nil
}

func main() {
	var queries queryList
	flag.Var(&queries, "q", "query to evaluate (repeatable)")
	interactive := flag.Bool("i", false, "interactive prompt")
	mode := flag.String("mode", "auto", "evaluation mode: auto | uniform | cascade")
	stats := flag.Bool("stats", false, "print evaluation statistics")
	explain := flag.Bool("explain", false, "print a derivation tree for provable ground queries (uniform mode)")
	maxGoals := flag.Int64("max", 0, "goal budget per query (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "per-query evaluation deadline, e.g. 500ms (0 = none)")
	snapshotOut := flag.String("snapshot-out", "", "write the loaded program+facts to this HDLSNAP file")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hdl [flags] program.hdl ...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var src strings.Builder
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		src.Write(data)
		src.WriteByte('\n')
	}
	prog, err := hypo.Parse(src.String())
	if err != nil {
		fatal(err)
	}
	if *snapshotOut != "" {
		if err := writeSnapshot(prog, *snapshotOut); err != nil {
			fatal(err)
		}
		fmt.Printf("%% snapshot written to %s\n", *snapshotOut)
		// Snapshot-only invocations stop here; queries or -i keep going.
		if len(prog.Queries()) == 0 && len(queries) == 0 && !*interactive {
			return
		}
	}
	opts := hypo.Options{MaxGoals: *maxGoals}
	if *explain {
		*mode = "uniform"
	}
	switch *mode {
	case "auto":
		opts.Mode = hypo.ModeAuto
	case "uniform":
		opts.Mode = hypo.ModeUniform
	case "cascade":
		opts.Mode = hypo.ModeCascade
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	eng, err := hypo.New(prog, opts)
	if err != nil {
		fatal(err)
	}

	s := prog.Stratification()
	if s.Linear {
		fmt.Printf("%% linearly stratified, %d strata (data-complexity in Σ_%d^P)\n", s.Strata, s.Strata)
	} else {
		fmt.Printf("%% not linearly stratified (%s); uniform evaluation\n", s.Reason)
	}

	all := append(append([]string{}, prog.Queries()...), queries...)
	aborted := false
	for _, q := range all {
		if runQuery(eng, q, *stats, *deadline) {
			aborted = true
		}
		if *explain {
			printExplanation(eng, q)
		}
	}

	if *interactive {
		repl(eng, prog, *stats, *deadline)
	}
	if *stats {
		dumpMetrics()
	}
	// A deadline or budget abort mid-file must not look like a clean
	// run: the skipped answers never printed.
	if aborted {
		os.Exit(1)
	}
}

// repl reads queries (and :commands) from stdin until EOF or :quit.
func repl(eng *hypo.Engine, prog *hypo.Program, stats bool, deadline time.Duration) {
	fmt.Println("% enter queries ('grad(S)[add: take(S, C)]'); :help for commands")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("?- ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		line = strings.TrimSuffix(line, ".")
		switch {
		case line == "":
		case line == ":quit" || line == ":q" || line == "quit" || line == "exit":
			return
		case line == ":help":
			fmt.Println(`  <premise>         evaluate a query (variables enumerate bindings)
  :explain <query>  print a derivation tree (uniform mode only)
  :strata           show the stratification report
  :program          print the loaded program
  :help             this text
  :quit             leave`)
		case line == ":strata":
			s := prog.Stratification()
			if s.Linear {
				fmt.Printf("   linearly stratified, %d strata (Σ_%d^P)\n", s.Strata, s.Strata)
				var preds []string
				for p := range s.Partition {
					preds = append(preds, p)
				}
				sort.Strings(preds)
				for _, p := range preds {
					fmt.Printf("   %-24s partition %d\n", p, s.Partition[p])
				}
			} else {
				fmt.Printf("   not linearly stratifiable: %s\n", s.Reason)
			}
		case line == ":program":
			fmt.Print(prog.String())
		case strings.HasPrefix(line, ":explain "):
			q := strings.TrimSpace(strings.TrimPrefix(line, ":explain"))
			tree, err := eng.Explain(q)
			switch {
			case err != nil:
				fmt.Printf("   error: %v\n", err)
			case tree == "":
				fmt.Println("   false (nothing to explain)")
			default:
				for _, l := range strings.Split(strings.TrimRight(tree, "\n"), "\n") {
					fmt.Printf("   | %s\n", l)
				}
			}
		default:
			runQuery(eng, line, stats, deadline)
		}
		fmt.Print("?- ")
	}
}

// runQuery evaluates and prints one query, reporting whether it was cut
// short by an *AbortError (deadline, cancellation or goal budget).
func runQuery(eng *hypo.Engine, q string, stats bool, deadline time.Duration) (aborted bool) {
	ctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	bs, err := eng.QueryCtx(ctx, q)
	if err != nil {
		var ae *hypo.AbortError
		if errors.As(err, &ae) {
			fmt.Printf("?- %s.\n   aborted: %v\n", q, err)
			fmt.Fprintf(os.Stderr,
				"hdl: query %q aborted: %v (partial work: goals=%d enumerated=%d table=%d hits=%d cuts=%d depth=%d)\n",
				q, ae.Reason, ae.Stats.Goals, ae.Stats.Enumerated, ae.Stats.TableSize,
				ae.Stats.TableHits, ae.Stats.LoopCuts, ae.Stats.MaxDepth)
			return true
		}
		fmt.Printf("?- %s.\n   error: %v\n", q, err)
		return false
	}
	fmt.Printf("?- %s.\n", q)
	switch {
	case len(bs) == 1 && len(bs[0]) == 0:
		fmt.Println("   true")
	case len(bs) == 0:
		fmt.Println("   false")
	default:
		for _, b := range bs {
			vars := make([]string, 0, len(b))
			for v := range b {
				vars = append(vars, v)
			}
			sort.Strings(vars)
			parts := make([]string, len(vars))
			for i, v := range vars {
				parts[i] = fmt.Sprintf("%s = %s", v, b[v])
			}
			fmt.Printf("   %s\n", strings.Join(parts, ", "))
		}
	}
	if stats {
		st := eng.Stats()
		fmt.Printf("   %% goals=%d table=%d hits=%d cuts=%d depth=%d\n",
			st.Goals, st.TableSize, st.TableHits, st.LoopCuts, st.MaxDepth)
	}
	return false
}

func printExplanation(eng *hypo.Engine, q string) {
	tree, err := eng.Explain(q)
	if err != nil {
		fmt.Printf("   %% no explanation: %v\n", err)
		return
	}
	if tree == "" {
		return
	}
	for _, line := range strings.Split(strings.TrimRight(tree, "\n"), "\n") {
		fmt.Printf("   | %s\n", line)
	}
}

// dumpMetrics prints the process-wide metrics snapshot (the same data
// exported on expvar as "hypo") as indented JSON.
func dumpMetrics() {
	out, err := json.MarshalIndent(metrics.Snapshot(), "% ", "  ")
	if err != nil {
		return
	}
	fmt.Printf("%% metrics %s\n", out)
}

// writeSnapshot compacts the program into a HDLSNAP file via tmp+rename
// so a crash never leaves a torn snapshot at the target path.
func writeSnapshot(prog *hypo.Program, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := prog.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hdl:", err)
	os.Exit(1)
}
