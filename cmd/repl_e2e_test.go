package cmd_test

// Full-stack replication e2e: three real hdld processes — one primary,
// two replicas — write on one node, read-your-writes on the others.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const clusterProg = `
node(a). node(b). node(c). node(d).
edge(a, b).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
`

// startNode launches one cluster member via the shared startHdld
// helper and registers its teardown.
func startNode(t *testing.T, args ...string) string {
	t.Helper()
	cmd, addr, _, _ := startHdld(t, args...)
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	return addr
}

func TestHdldReplicationCluster(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "cluster.hdl")
	if err := os.WriteFile(prog, []byte(clusterProg), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"p", "r1", "r2"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}

	primary := startNode(t,
		"-role", "primary", "-wal", filepath.Join(dir, "p", "wal.log"), prog)
	rep1 := startNode(t,
		"-role", "replica", "-primary", "http://"+primary,
		"-wal", filepath.Join(dir, "r1", "wal.log"), prog)
	rep2 := startNode(t,
		"-role", "replica", "-primary", "http://"+primary,
		"-wal", filepath.Join(dir, "r2", "wal.log"), prog)

	// Write on the primary; its response carries the committed version.
	resp, err := http.Post("http://"+primary+"/v1/facts", "application/json",
		strings.NewReader(`{"assert": ["edge(b, c)"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var commit struct {
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&commit); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || commit.Version != 1 {
		t.Fatalf("primary write: status %d version %d", resp.StatusCode, commit.Version)
	}

	// Read-your-writes on both replicas: X-Hdl-Min-Version parks the
	// read until the record arrives, so this must answer at >= v without
	// any sleep-and-retry on our side.
	askMin := func(addr, query string, min uint64) (int, string) {
		req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/ask",
			strings.NewReader(fmt.Sprintf(`{"query": %q}`, query)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Hdl-Min-Version", fmt.Sprint(min))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	for i, addr := range []string{rep1, rep2} {
		code, body := askMin(addr, "reach(a, c)", commit.Version)
		if code != 200 || !strings.Contains(body, `"result":true`) {
			t.Fatalf("replica %d gated read: status %d body %s", i+1, code, body)
		}
		if !strings.Contains(body, `"dataVersion":1`) {
			t.Fatalf("replica %d answered below the demanded version: %s", i+1, body)
		}
	}

	// Write through a replica: proxied to the primary, response relayed
	// with the new version — usable as the next min-version anywhere.
	resp, err = http.Post("http://"+rep1+"/v1/facts", "application/json",
		strings.NewReader(`{"assert": ["edge(c, d)"]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"version":2`) {
		t.Fatalf("proxied write: status %d body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Hdl-Proxied"); got != "primary" {
		t.Fatalf("X-Hdl-Proxied = %q, want primary", got)
	}
	if code, body := askMin(rep2, "reach(a, d)", 2); code != 200 || !strings.Contains(body, `"result":true`) {
		t.Fatalf("read-your-proxied-write on replica 2: status %d body %s", code, body)
	}

	// healthz on a replica reports its role and replication state.
	hresp, err := http.Get("http://" + rep2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(hbody), `"role":"replica"`) || !strings.Contains(string(hbody), `"replication"`) {
		t.Fatalf("replica healthz lacks replication fields: %s", hbody)
	}
}
