package hypo

import (
	"fmt"
	"sync"
)

// Pool evaluates queries against one program from many goroutines.
//
// The single-engine API is deliberately not safe for concurrent use (the
// memo tables and interners are lock-free); a Pool keeps a free list of
// independent engines — each with its own ground-atom interner and tables
// — and hands one to each in-flight query. The program's symbol table is
// itself safe for concurrent interning, so queries may mention fresh
// constants from any goroutine.
//
// Engines are reused, so their memo tables stay warm across queries that
// land on the same engine.
type Pool struct {
	prog    *Program
	opts    Options
	engines sync.Pool
}

// NewPool builds an engine pool. It constructs one engine eagerly so that
// configuration errors (e.g. cascade mode without a linear
// stratification) surface immediately.
func NewPool(p *Program, opts Options) (*Pool, error) {
	first, err := New(p, opts)
	if err != nil {
		return nil, err
	}
	pl := &Pool{prog: p, opts: opts}
	pl.engines.New = func() any {
		e, err := New(p, opts)
		if err != nil {
			// New succeeded once with identical inputs; a later failure
			// would be a programming error (e.g. the program was mutated).
			panic(fmt.Sprintf("hypo: Pool engine construction failed: %v", err))
		}
		return e
	}
	pl.engines.Put(first)
	return pl, nil
}

// withEngine runs f with a pooled engine.
func (pl *Pool) withEngine(f func(*Engine) error) error {
	e := pl.engines.Get().(*Engine)
	defer pl.engines.Put(e)
	return f(e)
}

// Ask evaluates a ground query premise; see Engine.Ask.
func (pl *Pool) Ask(query string) (bool, error) {
	var out bool
	err := pl.withEngine(func(e *Engine) error {
		var err error
		out, err = e.Ask(query)
		return err
	})
	return out, err
}

// Query evaluates a premise that may contain variables; see Engine.Query.
func (pl *Pool) Query(query string) ([]Binding, error) {
	var out []Binding
	err := pl.withEngine(func(e *Engine) error {
		var err error
		out, err = e.Query(query)
		return err
	})
	return out, err
}
