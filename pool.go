package hypo

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hypodatalog/internal/cache"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

// ErrPoolClosed is returned by every query method of a Pool after Close
// has been called. Test with errors.Is.
var ErrPoolClosed = errors.New("hypo: pool is closed")

// Pool evaluates queries against one program from many goroutines.
//
// The single-engine API is deliberately not safe for concurrent use (the
// memo tables and interners are lock-free); a Pool keeps a bounded free
// list of independent engines — each with its own ground-atom interner
// and tables — and leases one to each in-flight query. The free list is a
// channel rather than a sync.Pool so that idle engines are never dropped
// by the garbage collector: warm memo tables survive across queries, and
// the engine count (and hence memory) is bounded by Options.PoolSize.
//
// When all engines are busy, callers block until one frees up — or until
// their context is done, in which case they fail with ErrCanceled or
// ErrDeadline without having consumed an engine.
//
// # Lifecycle
//
// A Pool is live from NewPool until Close. Close is idempotent and safe
// to call concurrently with queries: new leases fail fast with
// ErrPoolClosed (including callers already blocked waiting for a free
// engine), in-flight queries run to completion, and every engine —
// whether idle at Close time or returned by an in-flight query
// afterwards — is dropped so its memo tables and interner become
// garbage. A closed pool stays closed.
// verProgram pairs a program with its data version so both swap
// atomically under SetProgram.
type verProgram struct {
	prog    *Program
	version uint64
}

type Pool struct {
	prog   *Program // the seed program; syms and domSet are version-stable
	opts   Options
	domSet map[symbols.Const]bool

	// cache is the pool-wide versioned answer cache (nil when
	// Options.CacheBytes is zero). It sits ABOVE the engine lease:
	// coalesced callers of one in-flight query and callers served from a
	// stored entry never draw an engine at all. Engines built by the pool
	// carry no cache of their own.
	cache *cache.Cache

	// cur is the program/version engines must be built against. Leases
	// check it on every get: an idle engine carrying an older version is
	// discarded — memo tables keyed to a stale base DB must never answer
	// for a newer one — and rebuilt from cur before being handed out.
	cur atomic.Pointer[verProgram]

	// free holds idle engines; its capacity is the pool size. Engines are
	// created lazily up to that capacity, so created only grows and a put
	// can never block.
	free    chan *Engine
	closing chan struct{} // closed by Close; wakes blocked getters
	mu      sync.Mutex    // guards created, closed
	created int
	closed  bool
}

// NewPool builds an engine pool. It constructs one engine eagerly so that
// configuration errors (e.g. cascade mode without a linear
// stratification) surface immediately. The pool holds at most
// Options.PoolSize engines (GOMAXPROCS when zero).
func NewPool(p *Program, opts Options) (*Pool, error) {
	var ac *cache.Cache
	if opts.CacheBytes > 0 {
		ac = cache.New(opts.CacheBytes)
		// The pool owns the one shared cache; strip the budget so the
		// engines it builds do not each grow a private one.
		opts.CacheBytes = 0
	}
	first, err := New(p, opts)
	if err != nil {
		return nil, err
	}
	size := opts.PoolSize
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	pl := &Pool{
		prog:    p,
		opts:    opts,
		domSet:  first.domSet,
		cache:   ac,
		free:    make(chan *Engine, size),
		closing: make(chan struct{}),
		created: 1,
	}
	pl.cur.Store(&verProgram{prog: p})
	pl.free <- first
	metrics.PoolNews.Inc()
	return pl, nil
}

// SetProgram swaps the pool to a new data version of its program. The
// swap is a hot one: in-flight queries keep the engines (and hence the
// exact base DB and memo state) they leased — snapshot isolation — while
// every lease that starts after SetProgram returns evaluates at the new
// version, rebuilding any stale idle engine it draws. The program must
// share the seed program's symbol table (Pool compiles queries against
// it before leasing), which holds for every Program.withFacts
// derivative. Versions are monotonic: a swap carrying a version older
// than the current one is dropped, so delayed or racing swaps (e.g. a
// slow commit finishing after a newer one already published) can never
// roll the served data version back. Used by Live; a static pool never
// calls it.
func (pl *Pool) SetProgram(p *Program, version uint64) {
	next := &verProgram{prog: p, version: version}
	for {
		cur := pl.cur.Load()
		if cur != nil && version < cur.version {
			return
		}
		if pl.cur.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Version reports the data version new leases evaluate at.
func (pl *Pool) Version() uint64 { return pl.cur.Load().version }

// Size reports the maximum number of engines (= concurrent queries).
func (pl *Pool) Size() int { return cap(pl.free) }

// Close shuts the pool down: subsequent leases — and getters already
// blocked waiting for an engine — fail with ErrPoolClosed, idle engines
// are released immediately, and engines still leased to in-flight
// queries are released when those queries return them. Close does not
// cancel in-flight queries; use their contexts for that. It is
// idempotent and always returns nil.
func (pl *Pool) Close() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		return nil
	}
	pl.closed = true
	close(pl.closing)
	for {
		select {
		case <-pl.free:
			pl.created--
		default:
			return nil
		}
	}
}

// get leases an engine: reuse an idle one, grow up to capacity, or block
// until an engine frees, the pool closes, or ctx is done. Engines are
// always handed out at the current data version (stale idle engines are
// rebuilt first — see fresh).
func (pl *Pool) get(ctx context.Context) (*Engine, error) {
	select {
	case <-pl.closing:
		return nil, ErrPoolClosed
	default:
	}
	select {
	case e := <-pl.free:
		metrics.PoolGets.Inc()
		return pl.fresh(e)
	default:
	}
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if pl.created < cap(pl.free) {
		pl.created++
		pl.mu.Unlock()
		e, err := pl.build()
		if err != nil {
			// New succeeded once with identical inputs in NewPool; roll the
			// slot back so the pool stays usable anyway.
			pl.mu.Lock()
			pl.created--
			pl.mu.Unlock()
			return nil, fmt.Errorf("hypo: Pool engine construction failed: %w", err)
		}
		metrics.PoolNews.Inc()
		return e, nil
	}
	pl.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case e := <-pl.free:
		metrics.PoolGets.Inc()
		return pl.fresh(e)
	case <-pl.closing:
		return nil, ErrPoolClosed
	case <-ctx.Done():
		return nil, topdown.ContextAbort(ctx.Err(), topdown.Stats{})
	}
}

// build constructs an engine at the current data version.
func (pl *Pool) build() (*Engine, error) {
	cur := pl.cur.Load()
	e, err := New(cur.prog, pl.opts)
	if err != nil {
		return nil, err
	}
	e.version = cur.version
	return e, nil
}

// fresh returns e if it matches the current data version; otherwise it
// drops e (memo tables of an old version are never reused) and builds a
// replacement. A rebuild failure — only possible if a withFacts
// derivative fails to construct, which New already succeeded on at
// SetProgram time — releases the engine slot so the pool keeps serving.
func (pl *Pool) fresh(e *Engine) (*Engine, error) {
	if e.version == pl.cur.Load().version {
		return e, nil
	}
	ne, err := pl.build()
	if err != nil {
		pl.mu.Lock()
		pl.created--
		pl.mu.Unlock()
		return nil, fmt.Errorf("hypo: Pool engine rebuild failed: %w", err)
	}
	metrics.LiveRebuilds.Inc()
	return ne, nil
}

// put returns a leased engine; never blocks since created ≤ cap(free).
// Engines returned after Close are dropped so their memory is released.
func (pl *Pool) put(e *Engine) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		pl.created--
		return
	}
	metrics.PoolPuts.Inc()
	pl.free <- e
}

// Ask evaluates a ground query premise; see Engine.Ask.
func (pl *Pool) Ask(query string) (bool, error) {
	return pl.AskCtx(context.Background(), query)
}

// AskCtx is Ask under a context; see Engine.AskCtx. The context also
// bounds the wait for a free engine.
func (pl *Pool) AskCtx(ctx context.Context, query string) (bool, error) {
	ok, _, err := pl.AskInfoCtx(ctx, query)
	return ok, err
}

// AskInfoCtx is AskCtx additionally reporting how the read was served:
// the data version the answer is valid at, whether the answer cache was
// hit, missed, coalesced onto another caller's identical in-flight
// evaluation, or bypassed, and the evaluation work this call performed.
func (pl *Pool) AskInfoCtx(ctx context.Context, query string) (bool, ReadInfo, error) {
	fin := poolTrack()
	ok, info, err := pl.askInfoCtx(ctx, query)
	fin(err)
	return ok, info, err
}

func (pl *Pool) askInfoCtx(ctx context.Context, query string) (bool, ReadInfo, error) {
	// Compile (and intern into the shared, concurrency-safe symbol table)
	// before leasing an engine: a malformed query must not occupy — or
	// block waiting for — an evaluation slot.
	pr, err := parser.ParsePremise(query)
	if err != nil {
		return false, ReadInfo{}, err
	}
	cpr, names, err := compilePremiseChecked(pr, pl.prog.syms, pl.domSet)
	if err != nil {
		return false, ReadInfo{}, err
	}
	if len(names) > 0 {
		return false, ReadInfo{}, fmt.Errorf("hypo: Ask needs a ground query; use Query for %q", query)
	}
	return pl.cachedBool(ctx, askCacheKey(pr), func(ctx context.Context, e *Engine) (bool, error) {
		return e.asker.AskPremiseCtx(ctx, cpr, e.asker.EmptyState())
	})
}

// statsDelta is the evaluation work between two Stats snapshots of one
// engine.
func statsDelta(before, after Stats) Stats {
	return Stats{
		Goals:      after.Goals - before.Goals,
		TableHits:  after.TableHits - before.TableHits,
		LoopCuts:   after.LoopCuts - before.LoopCuts,
		Enumerated: after.Enumerated - before.Enumerated,
		NegCalls:   after.NegCalls - before.NegCalls,
		MaxDepth:   after.MaxDepth,
		TableSize:  after.TableSize,
	}
}

func cacheStatusOf(st cache.Status) CacheStatus {
	switch st {
	case cache.Hit:
		return CacheHit
	case cache.Coalesced:
		return CacheCoalesced
	default:
		return CacheMiss
	}
}

// cachedBool runs a ground read through the pool's answer cache — or
// straight to an engine lease when no cache is configured — reporting
// how it was served. The cache key is built from the data version
// current at entry; if a hot swap lands between key construction and
// the engine lease, the (correct, newer-version) answer is returned but
// not stored, so an entry's version always matches its key.
func (pl *Pool) cachedBool(ctx context.Context, key string, eval func(context.Context, *Engine) (bool, error)) (bool, ReadInfo, error) {
	if pl.cache == nil {
		e, err := pl.get(ctx)
		if err != nil {
			return false, ReadInfo{}, err
		}
		defer pl.put(e)
		before := e.Stats()
		ok, err := eval(ctx, e)
		e.noteWork(before)
		info := ReadInfo{DataVersion: e.version, Cache: CacheBypass, Stats: statsDelta(before, e.Stats())}
		return ok, info, e.enrich(err)
	}
	var info ReadInfo
	ver := pl.cur.Load().version
	v, st, err := pl.cache.Do(ctx, cache.Key{Version: ver, Query: key}, func() (cache.Computed, error) {
		e, err := pl.get(ctx)
		if err != nil {
			return cache.Computed{}, err
		}
		defer pl.put(e)
		info.DataVersion = e.version
		before := e.Stats()
		ok, err := eval(ctx, e)
		e.noteWork(before)
		info.Stats = statsDelta(before, e.Stats())
		if err != nil {
			return cache.Computed{}, e.enrich(err)
		}
		return cache.Computed{
			Val:   &cachedAnswer{ok: ok, version: e.version},
			Bytes: boolAnswerBytes,
			Store: e.version == ver,
		}, nil
	})
	if err != nil {
		return false, info, wrapCacheWait(err)
	}
	ca := v.(*cachedAnswer)
	info.DataVersion = ca.version
	info.Cache = cacheStatusOf(st)
	return ca.ok, info, nil
}

// Do leases an engine, calls fn with it, and returns the engine to the
// pool — even if fn panics (the panic is re-raised after the engine is
// back on the free list). It is the escape hatch for callers that need
// several operations on one lease (e.g. a batch of queries that should
// not interleave with other traffic, or per-query Stats deltas via
// Engine.Stats). The engine must not be retained or used after fn
// returns. The context bounds only the wait for a free engine; pass it
// to the Engine's *Ctx methods inside fn to bound evaluation too.
func (pl *Pool) Do(ctx context.Context, fn func(*Engine) error) error {
	e, err := pl.get(ctx)
	if err != nil {
		return err
	}
	defer pl.put(e)
	return fn(e)
}

// Query evaluates a premise that may contain variables; see Engine.Query.
func (pl *Pool) Query(query string) ([]Binding, error) {
	return pl.QueryCtx(context.Background(), query)
}

// QueryCtx is Query under a context; see AskCtx.
func (pl *Pool) QueryCtx(ctx context.Context, query string) ([]Binding, error) {
	bs, _, err := pl.QueryInfoCtx(ctx, query)
	return bs, err
}

// QueryInfoCtx is QueryCtx additionally reporting how the read was
// served; see AskInfoCtx.
func (pl *Pool) QueryInfoCtx(ctx context.Context, query string) ([]Binding, ReadInfo, error) {
	fin := poolTrack()
	var out []Binding
	var info ReadInfo
	err := pl.queryEachInfoCtx(ctx, query, &info, func(b Binding) error {
		out = append(out, b)
		return nil
	})
	fin(err)
	if err != nil {
		return nil, info, err
	}
	return out, info, nil
}

// QueryEachCtx is the streaming form of QueryCtx: bindings are passed to
// yield one at a time as their proofs succeed, and a non-nil error from
// yield stops the enumeration and is returned verbatim. Compilation
// still happens before an engine is leased. With the answer cache
// enabled a miss streams each binding as it is proved while also
// materialising the set for later hits, which replay in the original
// enumeration order.
func (pl *Pool) QueryEachCtx(ctx context.Context, query string, yield func(Binding) error) error {
	var info ReadInfo
	return pl.QueryEachInfoCtx(ctx, query, &info, yield)
}

// QueryEachInfoCtx is QueryEachCtx additionally reporting how the read
// was served. info is filled in two phases: DataVersion and Cache are
// set before the first yield call (so a streaming caller can surface
// them in response headers), Stats when QueryEachInfoCtx returns.
func (pl *Pool) QueryEachInfoCtx(ctx context.Context, query string, info *ReadInfo, yield func(Binding) error) error {
	fin := poolTrack()
	err := pl.queryEachInfoCtx(ctx, query, info, yield)
	fin(err)
	return err
}

func (pl *Pool) queryEachInfoCtx(ctx context.Context, query string, info *ReadInfo, yield func(Binding) error) error {
	if info == nil {
		info = &ReadInfo{}
	}
	pr, err := parser.ParsePremise(query)
	if err != nil {
		return err
	}
	cpr, names, err := compilePremiseLoose(pr, pl.prog.syms)
	if err != nil {
		return err
	}
	if pl.cache == nil {
		e, err := pl.get(ctx)
		if err != nil {
			return err
		}
		defer pl.put(e)
		info.DataVersion = e.version
		info.Cache = CacheBypass
		before := e.Stats()
		err = e.queryEachCompiledCtx(ctx, cpr, names, yield)
		e.noteWork(before)
		info.Stats = statsDelta(before, e.Stats())
		return e.enrich(err)
	}
	ver := pl.cur.Load().version
	v, st, err := pl.cache.Do(ctx, cache.Key{Version: ver, Query: queryCacheKey(pr)}, func() (cache.Computed, error) {
		e, err := pl.get(ctx)
		if err != nil {
			return cache.Computed{}, err
		}
		defer pl.put(e)
		info.DataVersion = e.version
		info.Cache = CacheMiss
		acc := []Binding{}
		before := e.Stats()
		err = e.queryEachCompiledCtx(ctx, cpr, names, func(b Binding) error {
			acc = append(acc, b)
			return yield(b)
		})
		e.noteWork(before)
		info.Stats = statsDelta(before, e.Stats())
		if err != nil {
			// A yield abort — or an evaluation abort — surfaces verbatim
			// and caches nothing: the materialised set is partial.
			return cache.Computed{}, e.enrich(err)
		}
		return cache.Computed{
			Val:   &cachedAnswer{bindings: acc, version: e.version},
			Bytes: bindingsBytes(acc),
			Store: e.version == ver,
		}, nil
	})
	if err != nil {
		return wrapCacheWait(err)
	}
	if st == cache.Miss {
		return nil // the leader's yield already saw every binding
	}
	ca := v.(*cachedAnswer)
	info.DataVersion = ca.version
	info.Cache = cacheStatusOf(st)
	for _, b := range ca.bindings {
		if err := yield(b); err != nil {
			return err
		}
	}
	return nil
}

// AskUnder evaluates a ground query in a hypothetically extended
// database; see Engine.AskUnder.
func (pl *Pool) AskUnder(query string, added ...string) (bool, error) {
	return pl.AskUnderCtx(context.Background(), query, added...)
}

// AskUnderCtx is AskUnder under a context; see AskCtx.
func (pl *Pool) AskUnderCtx(ctx context.Context, query string, added ...string) (bool, error) {
	ok, _, err := pl.AskUnderInfoCtx(ctx, query, added...)
	return ok, err
}

// AskUnderInfoCtx is AskUnderCtx additionally reporting how the read was
// served; see AskInfoCtx. The cache key sorts the added atoms, so the
// same hypothetical state reached in a different add order shares one
// entry.
func (pl *Pool) AskUnderInfoCtx(ctx context.Context, query string, added ...string) (bool, ReadInfo, error) {
	fin := poolTrack()
	ok, info, err := pl.askUnderInfoCtx(ctx, query, added)
	fin(err)
	return ok, info, err
}

func (pl *Pool) askUnderInfoCtx(ctx context.Context, query string, added []string) (bool, ReadInfo, error) {
	cpr, adds, key, err := compileAskUnder(query, added, pl.prog.syms, pl.domSet)
	if err != nil {
		return false, ReadInfo{}, err
	}
	return pl.cachedBool(ctx, key, func(ctx context.Context, e *Engine) (bool, error) {
		return e.askUnderCompiled(ctx, cpr, adds)
	})
}
