package hypo

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hypodatalog/internal/ast"
	"hypodatalog/internal/cache"
	"hypodatalog/internal/depgraph"
	"hypodatalog/internal/facts"
	"hypodatalog/internal/metrics"
	"hypodatalog/internal/parser"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

// ErrPoolClosed is returned by every query method of a Pool after Close
// has been called. Test with errors.Is.
var ErrPoolClosed = errors.New("hypo: pool is closed")

// Pool evaluates queries against one program from many goroutines.
//
// The single-engine API is deliberately not safe for concurrent use (the
// memo tables and interners are lock-free); a Pool keeps a bounded free
// list of independent engines — each with its own ground-atom interner
// and tables — and leases one to each in-flight query. The free list is a
// channel rather than a sync.Pool so that idle engines are never dropped
// by the garbage collector: warm memo tables survive across queries, and
// the engine count (and hence memory) is bounded by Options.PoolSize.
//
// When all engines are busy, callers block until one frees up — or until
// their context is done, in which case they fail with ErrCanceled or
// ErrDeadline without having consumed an engine.
//
// # Lifecycle
//
// A Pool is live from NewPool until Close. Close is idempotent and safe
// to call concurrently with queries: new leases fail fast with
// ErrPoolClosed (including callers already blocked waiting for a free
// engine), in-flight queries run to completion, and every engine —
// whether idle at Close time or returned by an in-flight query
// afterwards — is dropped so its memo tables and interner become
// garbage. A closed pool stays closed.
// verProgram pairs a program with its data version so both swap
// atomically under SetProgram. It also owns the version's fact
// substrate — the interner and base database holding the program's
// facts — built at most once per version no matter how many engines
// rebuild at it: after a commit invalidates every idle engine, K
// concurrent leases would otherwise each re-intern the whole fact set
// (the thundering herd); with the singleflight they share one build and
// pay only a clone each.
type verProgram struct {
	prog    *Program
	version uint64
	mets    *metrics.Set // the owning pool's set (never nil)

	subOnce sync.Once
	sub     *substrate
	subErr  error
}

// substrate is a per-version interner + base database pair that engines
// clone from instead of re-interning the program's facts.
type substrate struct {
	in *facts.Interner
	db *facts.DB
}

// substrate builds the version's fact substrate on first use; concurrent
// callers block on the one build.
func (v *verProgram) substrate() (*substrate, error) {
	v.subOnce.Do(func() {
		v.mets.LiveSubstrateBuilds.Inc()
		in := facts.NewInterner(v.prog.syms)
		db := facts.NewDB(in)
		for _, f := range v.prog.comp.Facts {
			if _, err := db.Insert(in.InternGround(f)); err != nil {
				v.subErr = err
				return
			}
		}
		v.sub = &substrate{in: in, db: db}
	})
	return v.sub, v.subErr
}

// commitDelta is one commit's effective base-fact change, kept so stale
// idle engines can catch up from version `from` to `to` by mutating
// their state in place instead of rebuilding.
type commitDelta struct {
	from, to uint64
	added    []ast.CAtom
	removed  []ast.CAtom
	cone     map[symbols.Pred]bool
}

const (
	// maxDeltaHistory bounds how many commits the pool retains for
	// catch-up; an engine idle for longer rebuilds.
	maxDeltaHistory = 64
	// maxDeltaAtoms bounds one commit's recorded delta; a bulk load
	// bigger than this is cheaper to rebuild into than to propagate.
	maxDeltaAtoms = 1024
)

type Pool struct {
	prog   *Program // the seed program; syms and domSet are version-stable
	opts   Options
	domSet map[symbols.Const]bool
	mets   *metrics.Set // metric set for pool traffic (never nil)

	// cache is the pool-wide versioned answer cache (nil when
	// Options.CacheBytes is zero). It sits ABOVE the engine lease:
	// coalesced callers of one in-flight query and callers served from a
	// stored entry never draw an engine at all. Engines built by the pool
	// carry no cache of their own.
	cache *cache.Cache

	// cur is the program/version engines must be built against. Leases
	// check it on every get: an idle engine carrying an older version is
	// discarded — memo tables keyed to a stale base DB must never answer
	// for a newer one — and rebuilt from cur before being handed out.
	cur atomic.Pointer[verProgram]

	// free holds idle engines; its capacity is the pool size. Engines are
	// created lazily up to that capacity, so created only grows and a put
	// can never block.
	free    chan *Engine
	closing chan struct{} // closed by Close; wakes blocked getters
	mu      sync.Mutex    // guards created, closed
	created int
	closed  bool

	// idleBytes is the summed tracked footprint of the engines currently
	// on the free list: put adds an engine's footprint, get subtracts it.
	// An idle engine's footprint cannot change (nothing touches it), so
	// the two reads agree and the sum never drifts.
	idleBytes atomic.Int64

	// hmu guards the commit-delta history and the lazily-built dependency
	// graph used to compute affected cones.
	hmu     sync.Mutex
	history []commitDelta
	graph   *depgraph.Graph
}

// NewPool builds an engine pool. It constructs one engine eagerly so that
// configuration errors (e.g. cascade mode without a linear
// stratification) surface immediately. The pool holds at most
// Options.PoolSize engines (GOMAXPROCS when zero).
func NewPool(p *Program, opts Options) (*Pool, error) {
	mets := opts.metricSet()
	var ac *cache.Cache
	if opts.CacheBytes > 0 {
		ac = cache.New(opts.CacheBytes, mets)
		// The pool owns the one shared cache; strip the budget so the
		// engines it builds do not each grow a private one.
		opts.CacheBytes = 0
	}
	first, err := New(p, opts)
	if err != nil {
		return nil, err
	}
	size := opts.PoolSize
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	pl := &Pool{
		prog:    p,
		opts:    opts,
		domSet:  first.domSet,
		mets:    mets,
		cache:   ac,
		free:    make(chan *Engine, size),
		closing: make(chan struct{}),
		created: 1,
	}
	pl.cur.Store(&verProgram{prog: p, mets: mets})
	pl.idleBytes.Add(first.MemBytes())
	pl.free <- first
	mets.PoolNews.Inc()
	return pl, nil
}

// SetProgram swaps the pool to a new data version of its program. The
// swap is a hot one: in-flight queries keep the engines (and hence the
// exact base DB and memo state) they leased — snapshot isolation — while
// every lease that starts after SetProgram returns evaluates at the new
// version, rebuilding any stale idle engine it draws. The program must
// share the seed program's symbol table (Pool compiles queries against
// it before leasing), which holds for every Program.withFacts
// derivative. Versions are monotonic: a swap carrying a version older
// than the current one is dropped, so delayed or racing swaps (e.g. a
// slow commit finishing after a newer one already published) can never
// roll the served data version back. Used by Live; a static pool never
// calls it.
func (pl *Pool) SetProgram(p *Program, version uint64) {
	next := &verProgram{prog: p, version: version, mets: pl.mets}
	for {
		cur := pl.cur.Load()
		if cur != nil && version < cur.version {
			return
		}
		if pl.cur.CompareAndSwap(cur, next) {
			return
		}
	}
}

// SetProgramDelta is SetProgram for commits whose effective base-fact
// change is known: it records the delta (with its affected predicate
// cone) in the pool's catch-up history before publishing the new
// version, so stale idle engines drawn after the swap apply the change
// in place — keeping memo tables and materialisations outside the cone —
// instead of rebuilding from scratch. Oversized batches and deltas that
// fail to compile are published without history; engines then rebuild
// exactly as under SetProgram, sharing the version's substrate build.
func (pl *Pool) SetProgramDelta(p *Program, version uint64, added, removed []ast.Atom) {
	var (
		recorded bool
		from     uint64
		cone     map[symbols.Pred]bool
	)
	if len(added)+len(removed) <= maxDeltaAtoms {
		if cadd, crem, seeds, err := compileDelta(added, removed, p.syms); err == nil {
			cone = pl.coneOf(seeds)
			pl.hmu.Lock()
			from = pl.cur.Load().version
			if version > from {
				pl.history = append(pl.history, commitDelta{from: from, to: version, added: cadd, removed: crem, cone: cone})
				if len(pl.history) > maxDeltaHistory {
					pl.history = append([]commitDelta(nil), pl.history[len(pl.history)-maxDeltaHistory:]...)
				}
				recorded = true
			}
			pl.hmu.Unlock()
		}
	}
	if recorded && pl.cache != nil {
		// Cone-aware retention: answers whose predicates are all outside
		// the commit's affected cone cannot have changed — re-key them to
		// the new version before it is published, so the first readers
		// after the swap hit instead of re-evaluating. Entries that
		// predate `from`, carry no predicate list, or touch the cone stay
		// behind and age out.
		pl.cache.CarryForward(from, version, func(_ cache.Key, val any) (any, bool) {
			ca, ok := val.(*cachedAnswer)
			if !ok || ca.preds == nil {
				return nil, false
			}
			for _, p := range ca.preds {
				if cone[p] {
					return nil, false
				}
			}
			nc := *ca
			nc.version = version
			return &nc, true
		})
	}
	pl.SetProgram(p, version)
}

// coneOf computes the affected cone of the seed predicates against the
// pool's dependency graph (built once — every data version shares the
// seed program's rules, and facts contribute no edges).
func (pl *Pool) coneOf(seeds []ast.PredSig) map[symbols.Pred]bool {
	pl.hmu.Lock()
	if pl.graph == nil {
		pl.graph = depgraph.Build(pl.prog.src)
	}
	g := pl.graph
	pl.hmu.Unlock()
	return coneFromGraph(g, pl.prog.syms, seeds)
}

// deltasBetween returns the contiguous chain of recorded commit deltas
// leading from version `from` to version `to`, or ok=false when the
// history has a gap (evicted entry, oversized batch, plain SetProgram).
func (pl *Pool) deltasBetween(from, to uint64) ([]commitDelta, bool) {
	pl.hmu.Lock()
	defer pl.hmu.Unlock()
	var out []commitDelta
	v := from
	for v < to {
		found := false
		for i := range pl.history {
			if pl.history[i].from == v {
				out = append(out, pl.history[i])
				v = pl.history[i].to
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	if v != to {
		return nil, false
	}
	return out, true
}

// Version reports the data version new leases evaluate at.
func (pl *Pool) Version() uint64 { return pl.cur.Load().version }

// Size reports the maximum number of engines (= concurrent queries).
func (pl *Pool) Size() int { return cap(pl.free) }

// Close shuts the pool down: subsequent leases — and getters already
// blocked waiting for an engine — fail with ErrPoolClosed, idle engines
// are released immediately, and engines still leased to in-flight
// queries are released when those queries return them. Close does not
// cancel in-flight queries; use their contexts for that. It is
// idempotent and always returns nil.
func (pl *Pool) Close() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		return nil
	}
	pl.closed = true
	close(pl.closing)
	for {
		select {
		case <-pl.free:
			pl.created--
		default:
			pl.idleBytes.Store(0)
			return nil
		}
	}
}

// get leases an engine: reuse an idle one, grow up to capacity, or block
// until an engine frees, the pool closes, or ctx is done. Engines are
// always handed out at the current data version (stale idle engines are
// rebuilt first — see fresh).
func (pl *Pool) get(ctx context.Context) (*Engine, error) {
	select {
	case <-pl.closing:
		return nil, ErrPoolClosed
	default:
	}
	select {
	case e := <-pl.free:
		pl.idleBytes.Add(-e.MemBytes())
		pl.mets.PoolGets.Inc()
		return pl.fresh(e)
	default:
	}
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if pl.created < cap(pl.free) {
		pl.created++
		pl.mu.Unlock()
		e, err := pl.build()
		if err != nil {
			// New succeeded once with identical inputs in NewPool; roll the
			// slot back so the pool stays usable anyway.
			pl.mu.Lock()
			pl.created--
			pl.mu.Unlock()
			return nil, fmt.Errorf("hypo: Pool engine construction failed: %w", err)
		}
		pl.mets.PoolNews.Inc()
		return e, nil
	}
	pl.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case e := <-pl.free:
		pl.idleBytes.Add(-e.MemBytes())
		pl.mets.PoolGets.Inc()
		return pl.fresh(e)
	case <-pl.closing:
		return nil, ErrPoolClosed
	case <-ctx.Done():
		return nil, topdown.ContextAbort(ctx.Err(), topdown.Stats{})
	}
}

// build constructs an engine at the current data version, cloning the
// version's singleflighted fact substrate instead of re-interning the
// facts per engine.
func (pl *Pool) build() (*Engine, error) {
	cur := pl.cur.Load()
	sub, err := cur.substrate()
	if err != nil {
		return nil, err
	}
	e, err := newFromSubstrate(cur.prog, pl.opts, sub.in, sub.db)
	if err != nil {
		return nil, err
	}
	e.version = cur.version
	return e, nil
}

// fresh returns e if it matches the current data version. A stale engine
// first tries to catch up in place: if the pool's history holds a
// contiguous chain of commit deltas from the engine's version to the
// current one, each is applied incrementally — derived state outside the
// commits' affected cones survives, warm. Only when the chain is missing
// (engine idle past the history bound, bulk load, plain SetProgram) or
// an application fails is the engine dropped and rebuilt from the
// version's substrate. A rebuild failure — only possible if a withFacts
// derivative fails to construct, which New already succeeded on at
// SetProgram time — releases the engine slot so the pool keeps serving.
func (pl *Pool) fresh(e *Engine) (*Engine, error) {
	cur := pl.cur.Load()
	if e.version == cur.version {
		return e, nil
	}
	if ds, ok := pl.deltasBetween(e.version, cur.version); ok {
		applied := true
		atoms := 0
		for _, d := range ds {
			if err := e.applyDeltaCompiled(d.added, d.removed, d.cone); err != nil {
				// The engine is half-mutated; fall through to a rebuild.
				applied = false
				break
			}
			atoms += len(d.added) + len(d.removed)
		}
		if applied {
			e.prog = cur.prog
			e.version = cur.version
			pl.mets.LiveIncrementalApplies.Inc()
			pl.mets.LiveIncrementalAtoms.Add(int64(atoms))
			return e, nil
		}
	}
	pl.mets.LiveIncrementalFallbacks.Inc()
	ne, err := pl.build()
	if err != nil {
		pl.mu.Lock()
		pl.created--
		pl.mu.Unlock()
		return nil, fmt.Errorf("hypo: Pool engine rebuild failed: %w", err)
	}
	pl.mets.LiveRebuilds.Inc()
	return ne, nil
}

// put returns a leased engine; never blocks since created ≤ cap(free).
// Engines returned after Close are dropped so their memory is released.
func (pl *Pool) put(e *Engine) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		pl.created--
		return
	}
	pl.mets.PoolPuts.Inc()
	pl.idleBytes.Add(e.MemBytes())
	pl.free <- e
}

// MemBytes reports the pool's tracked resident footprint: the summed
// accounted bytes (interned symbols, base facts, memo tables,
// materialisations) of its idle engines plus the answer cache's stored
// bytes. Engines currently leased to in-flight queries are not counted —
// their footprint is attributed to the query holding them. The figure is
// an accounting estimate, not an RSS measurement.
func (pl *Pool) MemBytes() int64 {
	n := pl.idleBytes.Load()
	if pl.cache != nil {
		n += pl.cache.Stats().Bytes
	}
	return n
}

// CacheMemBytes reports the answer cache's share of MemBytes — the
// part TrimMemory cannot reclaim (0 when the pool has no cache).
func (pl *Pool) CacheMemBytes() int64 {
	if pl.cache == nil {
		return 0
	}
	return pl.cache.Stats().Bytes
}

// TrimMemory drops idle engines until the pool's tracked footprint is at
// or below target (or no idle engines remain), returning the number of
// engines released. Dropped slots are recreated lazily on demand, so a
// trim trades warm memo tables for memory — it never shrinks the pool's
// capacity. In-flight leases are untouched.
func (pl *Pool) TrimMemory(target int64) int {
	dropped := 0
	for pl.MemBytes() > target {
		select {
		case e := <-pl.free:
			pl.idleBytes.Add(-e.MemBytes())
			pl.mu.Lock()
			pl.created--
			pl.mu.Unlock()
			dropped++
		default:
			return dropped
		}
	}
	return dropped
}

// Ask evaluates a ground query premise; see Engine.Ask.
func (pl *Pool) Ask(query string) (bool, error) {
	return pl.AskCtx(context.Background(), query)
}

// AskCtx is Ask under a context; see Engine.AskCtx. The context also
// bounds the wait for a free engine.
func (pl *Pool) AskCtx(ctx context.Context, query string) (bool, error) {
	ok, _, err := pl.AskInfoCtx(ctx, query)
	return ok, err
}

// AskInfoCtx is AskCtx additionally reporting how the read was served:
// the data version the answer is valid at, whether the answer cache was
// hit, missed, coalesced onto another caller's identical in-flight
// evaluation, or bypassed, and the evaluation work this call performed.
func (pl *Pool) AskInfoCtx(ctx context.Context, query string) (bool, ReadInfo, error) {
	fin := poolTrack(pl.mets)
	ok, info, err := pl.askInfoCtx(ctx, query)
	fin(err)
	return ok, info, err
}

func (pl *Pool) askInfoCtx(ctx context.Context, query string) (bool, ReadInfo, error) {
	// Compile (and intern into the shared, concurrency-safe symbol table)
	// before leasing an engine: a malformed query must not occupy — or
	// block waiting for — an evaluation slot.
	pr, err := parser.ParsePremise(query)
	if err != nil {
		return false, ReadInfo{}, err
	}
	cpr, names, err := compilePremiseChecked(pr, pl.prog.syms, pl.domSet)
	if err != nil {
		return false, ReadInfo{}, err
	}
	if len(names) > 0 {
		return false, ReadInfo{}, fmt.Errorf("hypo: Ask needs a ground query; use Query for %q", query)
	}
	return pl.cachedBool(ctx, pl.ckey(askCacheKey(pr)), premisePreds(cpr, nil), func(ctx context.Context, e *Engine) (bool, error) {
		return e.asker.AskPremiseCtx(ctx, cpr, e.asker.EmptyState())
	})
}

// statsDelta is the evaluation work between two Stats snapshots of one
// engine.
func statsDelta(before, after Stats) Stats {
	return Stats{
		Goals:      after.Goals - before.Goals,
		TableHits:  after.TableHits - before.TableHits,
		LoopCuts:   after.LoopCuts - before.LoopCuts,
		Enumerated: after.Enumerated - before.Enumerated,
		NegCalls:   after.NegCalls - before.NegCalls,
		MaxDepth:   after.MaxDepth,
		TableSize:  after.TableSize,
		MemBytes:   after.MemBytes - before.MemBytes,
	}
}

func cacheStatusOf(st cache.Status) CacheStatus {
	switch st {
	case cache.Hit:
		return CacheHit
	case cache.Coalesced:
		return CacheCoalesced
	default:
		return CacheMiss
	}
}

// cachedBool runs a ground read through the pool's answer cache — or
// straight to an engine lease when no cache is configured — reporting
// how it was served. The cache key is built from the data version
// current at entry; if a hot swap lands between key construction and
// the engine lease, the (correct, newer-version) answer is returned but
// not stored, so an entry's version always matches its key.
func (pl *Pool) cachedBool(ctx context.Context, key string, preds []symbols.Pred, eval func(context.Context, *Engine) (bool, error)) (bool, ReadInfo, error) {
	if pl.cache == nil {
		e, err := pl.get(ctx)
		if err != nil {
			return false, ReadInfo{}, err
		}
		defer pl.put(e)
		e.beginMem()
		before := e.Stats()
		ok, err := eval(ctx, e)
		e.noteWork(before)
		info := ReadInfo{DataVersion: e.version, Cache: CacheBypass, Stats: statsDelta(before, e.Stats())}
		return ok, info, e.enrich(err)
	}
	var info ReadInfo
	ver := pl.cur.Load().version
	v, st, err := pl.cache.Do(ctx, cache.Key{Version: ver, Query: key}, func() (cache.Computed, error) {
		e, err := pl.get(ctx)
		if err != nil {
			return cache.Computed{}, err
		}
		defer pl.put(e)
		info.DataVersion = e.version
		e.beginMem()
		before := e.Stats()
		ok, err := eval(ctx, e)
		e.noteWork(before)
		info.Stats = statsDelta(before, e.Stats())
		if err != nil {
			return cache.Computed{}, e.enrich(err)
		}
		return cache.Computed{
			Val:   &cachedAnswer{ok: ok, version: e.version, preds: preds},
			Bytes: boolAnswerBytes,
			Store: e.version == ver,
		}, nil
	})
	if err != nil {
		return false, info, wrapCacheWait(err)
	}
	ca := v.(*cachedAnswer)
	info.DataVersion = ca.version
	info.Cache = cacheStatusOf(st)
	return ca.ok, info, nil
}

// Do leases an engine, calls fn with it, and returns the engine to the
// pool — even if fn panics (the panic is re-raised after the engine is
// back on the free list). It is the escape hatch for callers that need
// several operations on one lease (e.g. a batch of queries that should
// not interleave with other traffic, or per-query Stats deltas via
// Engine.Stats). The engine must not be retained or used after fn
// returns. The context bounds only the wait for a free engine; pass it
// to the Engine's *Ctx methods inside fn to bound evaluation too.
func (pl *Pool) Do(ctx context.Context, fn func(*Engine) error) error {
	e, err := pl.get(ctx)
	if err != nil {
		return err
	}
	defer pl.put(e)
	return fn(e)
}

// Query evaluates a premise that may contain variables; see Engine.Query.
func (pl *Pool) Query(query string) ([]Binding, error) {
	return pl.QueryCtx(context.Background(), query)
}

// QueryCtx is Query under a context; see AskCtx.
func (pl *Pool) QueryCtx(ctx context.Context, query string) ([]Binding, error) {
	bs, _, err := pl.QueryInfoCtx(ctx, query)
	return bs, err
}

// QueryInfoCtx is QueryCtx additionally reporting how the read was
// served; see AskInfoCtx.
func (pl *Pool) QueryInfoCtx(ctx context.Context, query string) ([]Binding, ReadInfo, error) {
	fin := poolTrack(pl.mets)
	var out []Binding
	var info ReadInfo
	err := pl.queryEachInfoCtx(ctx, query, &info, func(b Binding) error {
		out = append(out, b)
		return nil
	})
	fin(err)
	if err != nil {
		return nil, info, err
	}
	return out, info, nil
}

// QueryEachCtx is the streaming form of QueryCtx: bindings are passed to
// yield one at a time as their proofs succeed, and a non-nil error from
// yield stops the enumeration and is returned verbatim. Compilation
// still happens before an engine is leased. With the answer cache
// enabled a miss streams each binding as it is proved while also
// materialising the set for later hits, which replay in the original
// enumeration order.
func (pl *Pool) QueryEachCtx(ctx context.Context, query string, yield func(Binding) error) error {
	var info ReadInfo
	return pl.QueryEachInfoCtx(ctx, query, &info, yield)
}

// QueryEachInfoCtx is QueryEachCtx additionally reporting how the read
// was served. info is filled in two phases: DataVersion and Cache are
// set before the first yield call (so a streaming caller can surface
// them in response headers), Stats when QueryEachInfoCtx returns.
func (pl *Pool) QueryEachInfoCtx(ctx context.Context, query string, info *ReadInfo, yield func(Binding) error) error {
	fin := poolTrack(pl.mets)
	err := pl.queryEachInfoCtx(ctx, query, info, yield)
	fin(err)
	return err
}

func (pl *Pool) queryEachInfoCtx(ctx context.Context, query string, info *ReadInfo, yield func(Binding) error) error {
	if info == nil {
		info = &ReadInfo{}
	}
	pr, err := parser.ParsePremise(query)
	if err != nil {
		return err
	}
	cpr, names, err := compilePremiseLoose(pr, pl.prog.syms)
	if err != nil {
		return err
	}
	if pl.cache == nil {
		e, err := pl.get(ctx)
		if err != nil {
			return err
		}
		defer pl.put(e)
		info.DataVersion = e.version
		info.Cache = CacheBypass
		e.beginMem()
		before := e.Stats()
		err = e.queryEachCompiledCtx(ctx, cpr, names, yield)
		e.noteWork(before)
		info.Stats = statsDelta(before, e.Stats())
		return e.enrich(err)
	}
	ver := pl.cur.Load().version
	v, st, err := pl.cache.Do(ctx, cache.Key{Version: ver, Query: pl.ckey(queryCacheKey(pr))}, func() (cache.Computed, error) {
		e, err := pl.get(ctx)
		if err != nil {
			return cache.Computed{}, err
		}
		defer pl.put(e)
		info.DataVersion = e.version
		info.Cache = CacheMiss
		acc := []Binding{}
		e.beginMem()
		before := e.Stats()
		err = e.queryEachCompiledCtx(ctx, cpr, names, func(b Binding) error {
			acc = append(acc, b)
			return yield(b)
		})
		e.noteWork(before)
		info.Stats = statsDelta(before, e.Stats())
		if err != nil {
			// A yield abort — or an evaluation abort — surfaces verbatim
			// and caches nothing: the materialised set is partial.
			return cache.Computed{}, e.enrich(err)
		}
		return cache.Computed{
			Val:   &cachedAnswer{bindings: acc, version: e.version, preds: premisePreds(cpr, nil)},
			Bytes: bindingsBytes(acc),
			Store: e.version == ver,
		}, nil
	})
	if err != nil {
		return wrapCacheWait(err)
	}
	if st == cache.Miss {
		return nil // the leader's yield already saw every binding
	}
	ca := v.(*cachedAnswer)
	info.DataVersion = ca.version
	info.Cache = cacheStatusOf(st)
	for _, b := range ca.bindings {
		if err := yield(b); err != nil {
			return err
		}
	}
	return nil
}

// ExplainCtx returns a rendered derivation tree for a provable ground
// query ("" when it does not hold) plus the data version it was computed
// at; see Engine.Explain. Explanations always run on a uniform engine:
// when the pool's engines are uniform the leased engine's warm memo
// tables answer directly; when they run the cascade, a one-off uniform
// engine is built from the current version's fact substrate (an
// explanation is a diagnostic read — one extra engine build is the price
// of a proof tree, not a hot-path cost). Answers bypass the cache: the
// proof tree, not the boolean, is the product. ctx bounds the wait for a
// free engine; the proof search itself is bounded by Options.MaxGoals.
func (pl *Pool) ExplainCtx(ctx context.Context, query string) (string, ReadInfo, error) {
	fin := poolTrack(pl.mets)
	out, info, err := pl.explainCtx(ctx, query)
	fin(err)
	return out, info, err
}

func (pl *Pool) explainCtx(ctx context.Context, query string) (string, ReadInfo, error) {
	e, err := pl.get(ctx)
	if err != nil {
		return "", ReadInfo{}, err
	}
	defer pl.put(e)
	info := ReadInfo{DataVersion: e.version, Cache: CacheBypass}
	if e.uni != nil {
		e.beginMem()
		before := e.Stats()
		out, err := e.Explain(query)
		e.noteWork(before)
		info.Stats = statsDelta(before, e.Stats())
		return out, info, e.enrich(err)
	}
	// Cascade-mode pool: build a throwaway uniform engine at the leased
	// engine's version. The lease is kept for its admission effect — at
	// most PoolSize explain evaluations run at once — and to pin `cur`
	// from racing far ahead, though the substrate is looked up afresh.
	cur := pl.cur.Load()
	sub, serr := cur.substrate()
	if serr != nil {
		return "", info, serr
	}
	opts := pl.opts
	opts.Mode = ModeUniform
	opts.CacheBytes = 0
	// Explain reads the uniform engine directly; demand wrapping would be
	// dead weight on this throwaway engine (and proof trees must show the
	// user's rules only).
	opts.DemandDriven = false
	ue, uerr := newFromSubstrate(cur.prog, opts, sub.in, sub.db)
	if uerr != nil {
		return "", info, fmt.Errorf("hypo: building uniform engine for Explain: %w", uerr)
	}
	ue.version = cur.version
	info.DataVersion = cur.version
	out, err := ue.Explain(query)
	ue.noteWork(Stats{})
	info.Stats = ue.Stats()
	return out, info, ue.enrich(err)
}

// AskUnder evaluates a ground query in a hypothetically extended
// database; see Engine.AskUnder.
func (pl *Pool) AskUnder(query string, added ...string) (bool, error) {
	return pl.AskUnderCtx(context.Background(), query, added...)
}

// AskUnderCtx is AskUnder under a context; see AskCtx.
func (pl *Pool) AskUnderCtx(ctx context.Context, query string, added ...string) (bool, error) {
	ok, _, err := pl.AskUnderInfoCtx(ctx, query, added...)
	return ok, err
}

// AskUnderInfoCtx is AskUnderCtx additionally reporting how the read was
// served; see AskInfoCtx. The cache key sorts the added atoms, so the
// same hypothetical state reached in a different add order shares one
// entry.
func (pl *Pool) AskUnderInfoCtx(ctx context.Context, query string, added ...string) (bool, ReadInfo, error) {
	fin := poolTrack(pl.mets)
	ok, info, err := pl.askUnderInfoCtx(ctx, query, added)
	fin(err)
	return ok, info, err
}

func (pl *Pool) askUnderInfoCtx(ctx context.Context, query string, added []string) (bool, ReadInfo, error) {
	cpr, adds, key, err := compileAskUnder(query, added, pl.prog.syms, pl.domSet)
	if err != nil {
		return false, ReadInfo{}, err
	}
	return pl.cachedBool(ctx, pl.ckey(key), premisePreds(cpr, adds), func(ctx context.Context, e *Engine) (bool, error) {
		return e.askUnderCompiled(ctx, cpr, adds)
	})
}
