package hypo

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hypodatalog/internal/metrics"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

// ErrPoolClosed is returned by every query method of a Pool after Close
// has been called. Test with errors.Is.
var ErrPoolClosed = errors.New("hypo: pool is closed")

// Pool evaluates queries against one program from many goroutines.
//
// The single-engine API is deliberately not safe for concurrent use (the
// memo tables and interners are lock-free); a Pool keeps a bounded free
// list of independent engines — each with its own ground-atom interner
// and tables — and leases one to each in-flight query. The free list is a
// channel rather than a sync.Pool so that idle engines are never dropped
// by the garbage collector: warm memo tables survive across queries, and
// the engine count (and hence memory) is bounded by Options.PoolSize.
//
// When all engines are busy, callers block until one frees up — or until
// their context is done, in which case they fail with ErrCanceled or
// ErrDeadline without having consumed an engine.
//
// # Lifecycle
//
// A Pool is live from NewPool until Close. Close is idempotent and safe
// to call concurrently with queries: new leases fail fast with
// ErrPoolClosed (including callers already blocked waiting for a free
// engine), in-flight queries run to completion, and every engine —
// whether idle at Close time or returned by an in-flight query
// afterwards — is dropped so its memo tables and interner become
// garbage. A closed pool stays closed.
// verProgram pairs a program with its data version so both swap
// atomically under SetProgram.
type verProgram struct {
	prog    *Program
	version uint64
}

type Pool struct {
	prog   *Program // the seed program; syms and domSet are version-stable
	opts   Options
	domSet map[symbols.Const]bool

	// cur is the program/version engines must be built against. Leases
	// check it on every get: an idle engine carrying an older version is
	// discarded — memo tables keyed to a stale base DB must never answer
	// for a newer one — and rebuilt from cur before being handed out.
	cur atomic.Pointer[verProgram]

	// free holds idle engines; its capacity is the pool size. Engines are
	// created lazily up to that capacity, so created only grows and a put
	// can never block.
	free    chan *Engine
	closing chan struct{} // closed by Close; wakes blocked getters
	mu      sync.Mutex    // guards created, closed
	created int
	closed  bool
}

// NewPool builds an engine pool. It constructs one engine eagerly so that
// configuration errors (e.g. cascade mode without a linear
// stratification) surface immediately. The pool holds at most
// Options.PoolSize engines (GOMAXPROCS when zero).
func NewPool(p *Program, opts Options) (*Pool, error) {
	first, err := New(p, opts)
	if err != nil {
		return nil, err
	}
	size := opts.PoolSize
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	pl := &Pool{
		prog:    p,
		opts:    opts,
		domSet:  first.domSet,
		free:    make(chan *Engine, size),
		closing: make(chan struct{}),
		created: 1,
	}
	pl.cur.Store(&verProgram{prog: p})
	pl.free <- first
	metrics.PoolNews.Inc()
	return pl, nil
}

// SetProgram swaps the pool to a new data version of its program. The
// swap is a hot one: in-flight queries keep the engines (and hence the
// exact base DB and memo state) they leased — snapshot isolation — while
// every lease that starts after SetProgram returns evaluates at the new
// version, rebuilding any stale idle engine it draws. The program must
// share the seed program's symbol table (Pool compiles queries against
// it before leasing), which holds for every Program.withFacts
// derivative. Versions are monotonic: a swap carrying a version older
// than the current one is dropped, so delayed or racing swaps (e.g. a
// slow commit finishing after a newer one already published) can never
// roll the served data version back. Used by Live; a static pool never
// calls it.
func (pl *Pool) SetProgram(p *Program, version uint64) {
	next := &verProgram{prog: p, version: version}
	for {
		cur := pl.cur.Load()
		if cur != nil && version < cur.version {
			return
		}
		if pl.cur.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Version reports the data version new leases evaluate at.
func (pl *Pool) Version() uint64 { return pl.cur.Load().version }

// Size reports the maximum number of engines (= concurrent queries).
func (pl *Pool) Size() int { return cap(pl.free) }

// Close shuts the pool down: subsequent leases — and getters already
// blocked waiting for an engine — fail with ErrPoolClosed, idle engines
// are released immediately, and engines still leased to in-flight
// queries are released when those queries return them. Close does not
// cancel in-flight queries; use their contexts for that. It is
// idempotent and always returns nil.
func (pl *Pool) Close() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		return nil
	}
	pl.closed = true
	close(pl.closing)
	for {
		select {
		case <-pl.free:
			pl.created--
		default:
			return nil
		}
	}
}

// get leases an engine: reuse an idle one, grow up to capacity, or block
// until an engine frees, the pool closes, or ctx is done. Engines are
// always handed out at the current data version (stale idle engines are
// rebuilt first — see fresh).
func (pl *Pool) get(ctx context.Context) (*Engine, error) {
	select {
	case <-pl.closing:
		return nil, ErrPoolClosed
	default:
	}
	select {
	case e := <-pl.free:
		metrics.PoolGets.Inc()
		return pl.fresh(e)
	default:
	}
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if pl.created < cap(pl.free) {
		pl.created++
		pl.mu.Unlock()
		e, err := pl.build()
		if err != nil {
			// New succeeded once with identical inputs in NewPool; roll the
			// slot back so the pool stays usable anyway.
			pl.mu.Lock()
			pl.created--
			pl.mu.Unlock()
			return nil, fmt.Errorf("hypo: Pool engine construction failed: %w", err)
		}
		metrics.PoolNews.Inc()
		return e, nil
	}
	pl.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case e := <-pl.free:
		metrics.PoolGets.Inc()
		return pl.fresh(e)
	case <-pl.closing:
		return nil, ErrPoolClosed
	case <-ctx.Done():
		return nil, topdown.ContextAbort(ctx.Err(), topdown.Stats{})
	}
}

// build constructs an engine at the current data version.
func (pl *Pool) build() (*Engine, error) {
	cur := pl.cur.Load()
	e, err := New(cur.prog, pl.opts)
	if err != nil {
		return nil, err
	}
	e.version = cur.version
	return e, nil
}

// fresh returns e if it matches the current data version; otherwise it
// drops e (memo tables of an old version are never reused) and builds a
// replacement. A rebuild failure — only possible if a withFacts
// derivative fails to construct, which New already succeeded on at
// SetProgram time — releases the engine slot so the pool keeps serving.
func (pl *Pool) fresh(e *Engine) (*Engine, error) {
	if e.version == pl.cur.Load().version {
		return e, nil
	}
	ne, err := pl.build()
	if err != nil {
		pl.mu.Lock()
		pl.created--
		pl.mu.Unlock()
		return nil, fmt.Errorf("hypo: Pool engine rebuild failed: %w", err)
	}
	metrics.LiveRebuilds.Inc()
	return ne, nil
}

// put returns a leased engine; never blocks since created ≤ cap(free).
// Engines returned after Close are dropped so their memory is released.
func (pl *Pool) put(e *Engine) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		pl.created--
		return
	}
	metrics.PoolPuts.Inc()
	pl.free <- e
}

// Ask evaluates a ground query premise; see Engine.Ask.
func (pl *Pool) Ask(query string) (bool, error) {
	return pl.AskCtx(context.Background(), query)
}

// AskCtx is Ask under a context; see Engine.AskCtx. The context also
// bounds the wait for a free engine.
func (pl *Pool) AskCtx(ctx context.Context, query string) (bool, error) {
	fin := poolTrack()
	ok, err := pl.askCtx(ctx, query)
	fin(err)
	return ok, err
}

func (pl *Pool) askCtx(ctx context.Context, query string) (bool, error) {
	// Compile (and intern into the shared, concurrency-safe symbol table)
	// before leasing an engine: a malformed query must not occupy — or
	// block waiting for — an evaluation slot.
	pr, names, err := compileQueryChecked(query, pl.prog.syms, pl.domSet)
	if err != nil {
		return false, err
	}
	if len(names) > 0 {
		return false, fmt.Errorf("hypo: Ask needs a ground query; use Query for %q", query)
	}
	e, err := pl.get(ctx)
	if err != nil {
		return false, err
	}
	defer pl.put(e)
	before := e.Stats()
	ok, err := e.asker.AskPremiseCtx(ctx, pr, e.asker.EmptyState())
	e.noteWork(before)
	return ok, e.enrich(err)
}

// Do leases an engine, calls fn with it, and returns the engine to the
// pool — even if fn panics (the panic is re-raised after the engine is
// back on the free list). It is the escape hatch for callers that need
// several operations on one lease (e.g. a batch of queries that should
// not interleave with other traffic, or per-query Stats deltas via
// Engine.Stats). The engine must not be retained or used after fn
// returns. The context bounds only the wait for a free engine; pass it
// to the Engine's *Ctx methods inside fn to bound evaluation too.
func (pl *Pool) Do(ctx context.Context, fn func(*Engine) error) error {
	e, err := pl.get(ctx)
	if err != nil {
		return err
	}
	defer pl.put(e)
	return fn(e)
}

// Query evaluates a premise that may contain variables; see Engine.Query.
func (pl *Pool) Query(query string) ([]Binding, error) {
	return pl.QueryCtx(context.Background(), query)
}

// QueryCtx is Query under a context; see AskCtx.
func (pl *Pool) QueryCtx(ctx context.Context, query string) ([]Binding, error) {
	fin := poolTrack()
	bs, err := pl.queryCtx(ctx, query)
	fin(err)
	return bs, err
}

func (pl *Pool) queryCtx(ctx context.Context, query string) ([]Binding, error) {
	cpr, names, err := compileQueryLoose(query, pl.prog.syms)
	if err != nil {
		return nil, err
	}
	e, err := pl.get(ctx)
	if err != nil {
		return nil, err
	}
	defer pl.put(e)
	before := e.Stats()
	bs, err := e.queryCompiledCtx(ctx, cpr, names)
	e.noteWork(before)
	return bs, e.enrich(err)
}

// QueryEachCtx is the streaming form of QueryCtx: bindings are passed to
// yield one at a time as their proofs succeed, nothing is materialised,
// and a non-nil error from yield stops the enumeration and is returned
// verbatim. Compilation still happens before an engine is leased.
func (pl *Pool) QueryEachCtx(ctx context.Context, query string, yield func(Binding) error) error {
	fin := poolTrack()
	err := pl.queryEachCtx(ctx, query, yield)
	fin(err)
	return err
}

func (pl *Pool) queryEachCtx(ctx context.Context, query string, yield func(Binding) error) error {
	cpr, names, err := compileQueryLoose(query, pl.prog.syms)
	if err != nil {
		return err
	}
	e, err := pl.get(ctx)
	if err != nil {
		return err
	}
	defer pl.put(e)
	before := e.Stats()
	err = e.queryEachCompiledCtx(ctx, cpr, names, yield)
	e.noteWork(before)
	return e.enrich(err)
}

// AskUnder evaluates a ground query in a hypothetically extended
// database; see Engine.AskUnder.
func (pl *Pool) AskUnder(query string, added ...string) (bool, error) {
	return pl.AskUnderCtx(context.Background(), query, added...)
}

// AskUnderCtx is AskUnder under a context; see AskCtx.
func (pl *Pool) AskUnderCtx(ctx context.Context, query string, added ...string) (bool, error) {
	fin := poolTrack()
	ok, err := pl.askUnderCtx(ctx, query, added)
	fin(err)
	return ok, err
}

func (pl *Pool) askUnderCtx(ctx context.Context, query string, added []string) (bool, error) {
	pr, adds, err := compileAskUnder(query, added, pl.prog.syms, pl.domSet)
	if err != nil {
		return false, err
	}
	e, err := pl.get(ctx)
	if err != nil {
		return false, err
	}
	defer pl.put(e)
	before := e.Stats()
	ok, err := e.askUnderCompiled(ctx, pr, adds)
	e.noteWork(before)
	return ok, e.enrich(err)
}
