package hypo

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"hypodatalog/internal/metrics"
	"hypodatalog/internal/symbols"
	"hypodatalog/internal/topdown"
)

// Pool evaluates queries against one program from many goroutines.
//
// The single-engine API is deliberately not safe for concurrent use (the
// memo tables and interners are lock-free); a Pool keeps a bounded free
// list of independent engines — each with its own ground-atom interner
// and tables — and leases one to each in-flight query. The free list is a
// channel rather than a sync.Pool so that idle engines are never dropped
// by the garbage collector: warm memo tables survive across queries, and
// the engine count (and hence memory) is bounded by Options.PoolSize.
//
// When all engines are busy, callers block until one frees up — or until
// their context is done, in which case they fail with ErrCanceled or
// ErrDeadline without having consumed an engine.
type Pool struct {
	prog   *Program
	opts   Options
	domSet map[symbols.Const]bool

	// free holds idle engines; its capacity is the pool size. Engines are
	// created lazily up to that capacity, so created only grows and a put
	// can never block.
	free    chan *Engine
	mu      sync.Mutex // guards created
	created int
}

// NewPool builds an engine pool. It constructs one engine eagerly so that
// configuration errors (e.g. cascade mode without a linear
// stratification) surface immediately. The pool holds at most
// Options.PoolSize engines (GOMAXPROCS when zero).
func NewPool(p *Program, opts Options) (*Pool, error) {
	first, err := New(p, opts)
	if err != nil {
		return nil, err
	}
	size := opts.PoolSize
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	pl := &Pool{
		prog:    p,
		opts:    opts,
		domSet:  first.domSet,
		free:    make(chan *Engine, size),
		created: 1,
	}
	pl.free <- first
	metrics.PoolNews.Inc()
	return pl, nil
}

// Size reports the maximum number of engines (= concurrent queries).
func (pl *Pool) Size() int { return cap(pl.free) }

// get leases an engine: reuse an idle one, grow up to capacity, or block
// until an engine frees or ctx is done.
func (pl *Pool) get(ctx context.Context) (*Engine, error) {
	select {
	case e := <-pl.free:
		metrics.PoolGets.Inc()
		return e, nil
	default:
	}
	pl.mu.Lock()
	if pl.created < cap(pl.free) {
		pl.created++
		pl.mu.Unlock()
		e, err := New(pl.prog, pl.opts)
		if err != nil {
			// New succeeded once with identical inputs in NewPool; roll the
			// slot back so the pool stays usable anyway.
			pl.mu.Lock()
			pl.created--
			pl.mu.Unlock()
			return nil, fmt.Errorf("hypo: Pool engine construction failed: %w", err)
		}
		metrics.PoolNews.Inc()
		return e, nil
	}
	pl.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case e := <-pl.free:
		metrics.PoolGets.Inc()
		return e, nil
	case <-ctx.Done():
		return nil, topdown.ContextAbort(ctx.Err(), topdown.Stats{})
	}
}

// put returns a leased engine; never blocks since created ≤ cap(free).
func (pl *Pool) put(e *Engine) {
	metrics.PoolPuts.Inc()
	pl.free <- e
}

// Ask evaluates a ground query premise; see Engine.Ask.
func (pl *Pool) Ask(query string) (bool, error) {
	return pl.AskCtx(context.Background(), query)
}

// AskCtx is Ask under a context; see Engine.AskCtx. The context also
// bounds the wait for a free engine.
func (pl *Pool) AskCtx(ctx context.Context, query string) (bool, error) {
	fin := poolTrack()
	ok, err := pl.askCtx(ctx, query)
	fin(err)
	return ok, err
}

func (pl *Pool) askCtx(ctx context.Context, query string) (bool, error) {
	// Compile (and intern into the shared, concurrency-safe symbol table)
	// before leasing an engine: a malformed query must not occupy — or
	// block waiting for — an evaluation slot.
	pr, names, err := compileQueryChecked(query, pl.prog.syms, pl.domSet)
	if err != nil {
		return false, err
	}
	if len(names) > 0 {
		return false, fmt.Errorf("hypo: Ask needs a ground query; use Query for %q", query)
	}
	e, err := pl.get(ctx)
	if err != nil {
		return false, err
	}
	defer pl.put(e)
	before := e.Stats()
	ok, err := e.asker.AskPremiseCtx(ctx, pr, e.asker.EmptyState())
	e.noteWork(before)
	return ok, e.enrich(err)
}

// Query evaluates a premise that may contain variables; see Engine.Query.
func (pl *Pool) Query(query string) ([]Binding, error) {
	return pl.QueryCtx(context.Background(), query)
}

// QueryCtx is Query under a context; see AskCtx.
func (pl *Pool) QueryCtx(ctx context.Context, query string) ([]Binding, error) {
	fin := poolTrack()
	bs, err := pl.queryCtx(ctx, query)
	fin(err)
	return bs, err
}

func (pl *Pool) queryCtx(ctx context.Context, query string) ([]Binding, error) {
	cpr, names, err := compileQueryLoose(query, pl.prog.syms)
	if err != nil {
		return nil, err
	}
	e, err := pl.get(ctx)
	if err != nil {
		return nil, err
	}
	defer pl.put(e)
	before := e.Stats()
	bs, err := e.queryCompiledCtx(ctx, cpr, names)
	e.noteWork(before)
	return bs, e.enrich(err)
}

// AskUnder evaluates a ground query in a hypothetically extended
// database; see Engine.AskUnder.
func (pl *Pool) AskUnder(query string, added ...string) (bool, error) {
	return pl.AskUnderCtx(context.Background(), query, added...)
}

// AskUnderCtx is AskUnder under a context; see AskCtx.
func (pl *Pool) AskUnderCtx(ctx context.Context, query string, added ...string) (bool, error) {
	fin := poolTrack()
	ok, err := pl.askUnderCtx(ctx, query, added)
	fin(err)
	return ok, err
}

func (pl *Pool) askUnderCtx(ctx context.Context, query string, added []string) (bool, error) {
	pr, adds, err := compileAskUnder(query, added, pl.prog.syms, pl.domSet)
	if err != nil {
		return false, err
	}
	e, err := pl.get(ctx)
	if err != nil {
		return false, err
	}
	defer pl.put(e)
	before := e.Stats()
	ok, err := e.askUnderCompiled(ctx, pr, adds)
	e.noteWork(before)
	return ok, e.enrich(err)
}
