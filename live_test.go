package hypo

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hypodatalog/internal/live"
	"hypodatalog/internal/vfs"
)

// quietLog drops store diagnostics (compaction notices) in tests.
var quietLog = slog.New(slog.NewTextHandler(io.Discard, nil))

// liveSrc declares flag/1 extensional (a seed fact) and light/1 by rule,
// with spare constants so asserts have room to move.
const liveSrc = `
flag(off).
node(a). node(b). node(c).
edge(a, b).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
light(X) :- flag(X).
`

func openLive(t *testing.T, opts Options) *Live {
	t.Helper()
	dir := t.TempDir()
	l, err := OpenLive(mustParse(t, liveSrc), LiveConfig{
		WALPath:      filepath.Join(dir, "wal.log"),
		SnapshotPath: filepath.Join(dir, "db.snap"),
		NoSync:       true,
		Logger:       quietLog,
	}, opts)
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func mutations(t *testing.T, asserts, retracts []string) []live.Mutation {
	t.Helper()
	ms, err := ParseMutations(asserts, retracts)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestLiveApplyVisibleToNextQuery(t *testing.T) {
	l := openLive(t, Options{})
	pl := l.Pool()
	if ok, err := pl.Ask("reach(b, c)"); err != nil || ok {
		t.Fatalf("reach(b, c) before assert = %v, %v", ok, err)
	}
	info, err := l.Apply(mutations(t, []string{"edge(b, c)"}, nil))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if info.Version != 1 || info.Changed != 1 {
		t.Fatalf("info = %+v", info)
	}
	if pl.Version() != 1 {
		t.Fatalf("pool version = %d, want 1", pl.Version())
	}
	if ok, err := pl.Ask("reach(b, c)"); err != nil || !ok {
		t.Fatalf("reach(b, c) after assert = %v, %v", ok, err)
	}
	// Rules fire over the new base: light(on)? still needs flag(on).
	if _, err := l.Apply(mutations(t, nil, []string{"edge(b, c)"})); err != nil {
		t.Fatal(err)
	}
	if ok, _ := pl.Ask("reach(b, c)"); ok {
		t.Fatal("reach(b, c) survived retraction")
	}
}

// TestLiveSnapshotIsolation holds one engine across a commit: the leased
// engine must keep answering at its pinned version while the next lease
// sees the new one.
func TestLiveSnapshotIsolation(t *testing.T) {
	l := openLive(t, Options{})
	pl := l.Pool()
	err := pl.Do(context.Background(), func(e *Engine) error {
		if v := e.DataVersion(); v != 0 {
			return fmt.Errorf("leased engine at version %d, want 0", v)
		}
		if ok, err := e.Ask("reach(b, c)"); err != nil || ok {
			return fmt.Errorf("pre-commit reach(b, c) = %v, %v", ok, err)
		}
		// Commit while the lease is held.
		if _, err := l.Apply(mutations(t, []string{"edge(b, c)"}, nil)); err != nil {
			return err
		}
		// The running engine still evaluates against its own version.
		if ok, err := e.Ask("reach(b, c)"); err != nil || ok {
			return fmt.Errorf("leased engine saw the commit: %v, %v", ok, err)
		}
		if v := e.DataVersion(); v != 0 {
			return fmt.Errorf("leased engine version drifted to %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The next lease is at version 1 and sees the fact.
	err = pl.Do(context.Background(), func(e *Engine) error {
		if v := e.DataVersion(); v != 1 {
			return fmt.Errorf("post-commit lease at version %d, want 1", v)
		}
		ok, err := e.Ask("reach(b, c)")
		if err != nil || !ok {
			return fmt.Errorf("post-commit reach(b, c) = %v, %v", ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLiveApplyValidation(t *testing.T) {
	l := openLive(t, Options{})
	cases := []struct {
		name     string
		asserts  []string
		retracts []string
	}{
		{"intensional predicate", []string{"reach(a, b)"}, nil},
		{"intensional via rule head", []string{"light(off)"}, nil},
		{"out-of-domain constant", []string{"edge(a, zz9)"}, nil},
		{"out-of-domain retract", nil, []string{"edge(a, zz9)"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ms, err := ParseMutations(tc.asserts, tc.retracts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.Apply(ms); err == nil {
				t.Fatalf("Apply(%v, %v) succeeded", tc.asserts, tc.retracts)
			}
		})
	}
	if _, err := ParseMutations([]string{"edge(a, X)"}, nil); err == nil {
		t.Fatal("non-ground assert parsed")
	}
	if _, err := ParseMutations([]string{"edge(a,"}, nil); err == nil {
		t.Fatal("malformed atom parsed")
	}
	if l.Version() != 0 {
		t.Fatalf("rejected batches moved the version to %d", l.Version())
	}
	// A batch mixing one valid and one invalid mutation is all-or-nothing.
	ms := mutations(t, []string{"edge(b, c)"}, nil)
	bad, err := ParseMutations([]string{"reach(a, c)"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Apply(append(ms, bad...)); err == nil {
		t.Fatal("mixed batch committed")
	}
	if ok, _ := l.Pool().Ask("reach(b, c)"); ok {
		t.Fatal("rejected batch partially applied")
	}
}

// TestLiveExtraDomainAssert: constants declared via Options.ExtraDomain
// are assertable even though no program text mentions them.
func TestLiveExtraDomainAssert(t *testing.T) {
	l := openLive(t, Options{ExtraDomain: []string{"d"}})
	if _, err := l.Apply(mutations(t, []string{"edge(c, d)"}, nil)); err != nil {
		t.Fatalf("Apply with ExtraDomain constant: %v", err)
	}
	ok, err := l.Pool().Ask("reach(c, d)")
	if err != nil || !ok {
		t.Fatalf("reach(c, d) = %v, %v", ok, err)
	}
}

// TestLiveRecovery: facts asserted in one Live survive into the next via
// snapshot + WAL, including constants outside the seed program's text.
func TestLiveRecovery(t *testing.T) {
	dir := t.TempDir()
	lc := LiveConfig{
		WALPath:      filepath.Join(dir, "wal.log"),
		SnapshotPath: filepath.Join(dir, "db.snap"),
		NoSync:       true,
		Logger:       quietLog,
	}
	opts := Options{ExtraDomain: []string{"d"}}
	l, err := OpenLive(mustParse(t, liveSrc), lc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Apply(mutations(t, []string{"edge(b, c)", "edge(c, d)"}, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Apply(mutations(t, nil, []string{"flag(off)"})); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen WITHOUT ExtraDomain: the recovered fact edge(c, d) must pull
	// d back into the pinned domain on its own.
	r, err := OpenLive(mustParse(t, liveSrc), lc, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if v := r.Version(); v != 2 {
		t.Fatalf("recovered version = %d, want 2", v)
	}
	if ok, err := r.Pool().Ask("reach(a, d)"); err != nil || !ok {
		t.Fatalf("reach(a, d) after recovery = %v, %v", ok, err)
	}
	if ok, _ := r.Pool().Ask("light(off)"); ok {
		t.Fatal("retracted flag(off) resurrected by recovery")
	}
	// And the recovered constant is assertable again.
	if _, err := r.Apply(mutations(t, []string{"node(d)"}, nil)); err != nil {
		t.Fatalf("asserting recovered constant: %v", err)
	}
}

func TestLiveClosedApply(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLive(mustParse(t, liveSrc), LiveConfig{
		WALPath: filepath.Join(dir, "wal.log"),
		NoSync:  true,
		Logger:  quietLog,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Apply(mutations(t, []string{"edge(b, c)"}, nil)); !errors.Is(err, live.ErrClosed) {
		t.Fatalf("Apply after Close = %v, want ErrClosed", err)
	}
}

// TestLiveConcurrentReadWrite is the race-clean mixed-traffic test: a
// writer toggles flag(on) on and off (one mutation per commit) while
// readers check the invariant that light(on) holds exactly at odd data
// versions — any engine mixing versions, or any memo state bleeding
// across a rebuild, breaks the parity.
func TestLiveConcurrentReadWrite(t *testing.T) {
	l := openLive(t, Options{PoolSize: 4, ExtraDomain: []string{"on"}})
	pl := l.Pool()

	const commits = 60
	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	wg.Add(1)
	go func() {
		defer wg.Done()
		on := true
		for i := 0; i < commits; i++ {
			var ms []live.Mutation
			var err error
			if on {
				ms, err = ParseMutations([]string{"flag(on)"}, nil)
			} else {
				ms, err = ParseMutations(nil, []string{"flag(on)"})
			}
			if err == nil {
				_, err = l.Apply(ms)
			}
			if err != nil {
				errCh <- fmt.Errorf("writer commit %d: %w", i, err)
				return
			}
			on = !on
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				err := pl.Do(context.Background(), func(e *Engine) error {
					v := e.DataVersion()
					ok, err := e.Ask("light(on)")
					if err != nil {
						return err
					}
					if want := v%2 == 1; ok != want {
						return fmt.Errorf("reader %d: light(on)=%v at version %d", r, ok, v)
					}
					// Same lease, same version: the answer must not move
					// even if the writer committed meanwhile.
					ok2, err := e.Ask("light(on)")
					if err != nil {
						return err
					}
					if ok2 != ok {
						return fmt.Errorf("reader %d: answer changed mid-lease at version %d", r, v)
					}
					return nil
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if v := l.Version(); v != commits {
		t.Fatalf("final version = %d, want %d", v, commits)
	}
	// Ended on a retract (even count): light(on) is off.
	if ok, err := pl.Ask("light(on)"); err != nil || ok {
		t.Fatalf("final light(on) = %v, %v", ok, err)
	}
}

// TestLiveNoVersionSkewUnderCompactionLatency races Apply (with
// compaction every other commit) against readers sampling versions,
// with every fsync slowed by injected latency to stretch the commit
// window. The pool version is read first, the store version second, so
// pool > store is a genuine ordering violation: the pool must never
// publish a version before the store has durably reached it.
func TestLiveNoVersionSkewUnderCompactionLatency(t *testing.T) {
	ft := vfs.NewFault(vfs.NewMem(), vfs.Latency(vfs.OpSync, 200*time.Microsecond))
	l, err := OpenLive(mustParse(t, liveSrc), LiveConfig{
		WALPath:       "/db/wal.log",
		SnapshotPath:  "/db/db.snap",
		SnapshotEvery: 2,
		Logger:        quietLog,
		FS:            ft,
	}, Options{PoolSize: 4})
	if err != nil {
		t.Fatalf("OpenLive: %v", err)
	}
	defer l.Close()
	pl := l.Pool()

	stop := make(chan struct{})
	errCh := make(chan error, 8)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pv := pl.Version()
				if sv := l.Version(); pv > sv {
					errCh <- fmt.Errorf("pool publishes version %d before the store reaches it (store at %d)", pv, sv)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := pl.Ask("reach(a, b)"); err != nil {
				errCh <- fmt.Errorf("reader: %w", err)
				return
			}
		}
	}()

	on := true
	for i := 0; i < 30; i++ {
		var ms []live.Mutation
		if on {
			ms, err = ParseMutations([]string{"edge(b, c)"}, nil)
		} else {
			ms, err = ParseMutations(nil, []string{"edge(b, c)"})
		}
		if err == nil {
			_, err = l.Apply(ms)
		}
		if err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		on = !on
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if pv, sv := pl.Version(), l.Version(); pv != sv {
		t.Fatalf("after quiescence pool version %d != store version %d", pv, sv)
	}
}
